//! Preallocated stripe lane storage for the simulator's hot paths.
//!
//! Verify-mode repair checks run once per repaired block — thousands of
//! times per simulated month — and previously allocated a fresh
//! `Vec<Option<Vec<u8>>>` stripe each time. A [`StripeArena`] keeps one
//! set of lane buffers alive for the whole simulation and hands out
//! `&mut [Vec<u8>]` slices sized to the stripe at hand, so the steady
//! state does no payload allocation at all.

/// Reusable lane buffers for one stripe's worth of payloads.
#[derive(Debug, Default)]
pub struct StripeArena {
    lanes: Vec<Vec<u8>>,
}

impl StripeArena {
    /// An empty arena; lanes grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// `n` lane buffers of exactly `len` bytes each, contents arbitrary.
    ///
    /// Grows the arena on first use (and whenever a larger stripe shows
    /// up); otherwise only adjusts lengths within existing capacity.
    pub fn lanes(&mut self, n: usize, len: usize) -> &mut [Vec<u8>] {
        if self.lanes.len() < n {
            self.lanes.resize_with(n, Vec::new);
        }
        for lane in &mut self.lanes[..n] {
            lane.resize(len, 0);
        }
        &mut self.lanes[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_sized_and_reused() {
        let mut arena = StripeArena::new();
        {
            let lanes = arena.lanes(3, 8);
            assert_eq!(lanes.len(), 3);
            assert!(lanes.iter().all(|l| l.len() == 8));
            lanes[0][0] = 42;
        }
        // Shrinking reuses the same buffers without reallocating.
        let ptr = arena.lanes(3, 8)[0].as_ptr();
        let lanes = arena.lanes(2, 4);
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes[0].len(), 4);
        assert_eq!(lanes[0].as_ptr(), ptr);
    }

    #[test]
    fn growing_len_extends_with_zeroes_only_beyond_old_len() {
        let mut arena = StripeArena::new();
        arena.lanes(1, 2)[0].copy_from_slice(&[7, 7]);
        let lanes = arena.lanes(1, 4);
        assert_eq!(&lanes[0][..2], &[7, 7]); // contents are arbitrary but stable
    }
}
