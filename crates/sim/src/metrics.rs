//! Measurement collection: the §5.1 evaluation metrics.
//!
//! * **HDFS Bytes Read** — data read by repair/degraded-read tasks.
//! * **Network Traffic** — bytes crossing the network (read streams and
//!   block write-back), as AWS CloudWatch would report.
//! * **Repair Duration** — first repair-job launch to last completion.
//!
//! Cumulative counters support per-event deltas (Fig. 4); bucketed time
//! series reproduce the 5-minute-resolution plots of Fig. 5.
//!
//! # Bounded time series
//!
//! A multi-year warehouse run at 5-minute resolution would grow an
//! unbounded per-bucket vector (a simulated decade is >1M buckets per
//! series). [`BucketSeries`] therefore keeps a *fixed maximum number of
//! buckets*: when a sample lands past the last representable bucket, the
//! series coarsens itself by merging adjacent bucket pairs and doubling
//! the bucket width — aggregation happens on the fly, memory stays
//! `O(max_buckets)`, and totals are preserved exactly. Paper-scale runs
//! (hours to days at 300 s buckets) never coarsen, so the Fig.-5 plots
//! are bit-identical to the unbounded implementation.

use crate::time::SimTime;

/// Default cap on buckets per series: 8192 buckets × 300 s ≈ 28 days at
/// the paper's 5-minute resolution before the first coarsening.
pub const DEFAULT_MAX_BUCKETS: usize = 8192;

/// A point-in-time snapshot of the cumulative counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CounterSnapshot {
    /// Cumulative HDFS bytes read.
    pub hdfs_bytes_read: f64,
    /// Cumulative network bytes moved.
    pub network_bytes: f64,
    /// Cumulative disk bytes read.
    pub disk_bytes_read: f64,
    /// Blocks reconstructed so far.
    pub blocks_repaired: u64,
}

/// One completed job's span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpan {
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time.
    pub finished: SimTime,
}

impl JobSpan {
    /// Wall-clock duration.
    pub fn duration(&self) -> SimTime {
        self.finished - self.submitted
    }
}

/// A bounded time series of per-interval totals.
///
/// Samples are spread proportionally over the buckets their interval
/// overlaps. The series starts at the configured resolution and doubles
/// its bucket width (merging pairs in place) whenever a sample would
/// need more than `max_buckets` buckets, so memory is bounded however
/// long the simulation runs. Out-of-order recording is supported: a
/// sample may land in any bucket at or before the latest one.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketSeries {
    bucket_secs: u64,
    max_buckets: usize,
    buckets: Vec<f64>,
    total: f64,
}

impl BucketSeries {
    /// An empty series at `bucket_secs` resolution holding at most
    /// `max_buckets` buckets before coarsening.
    pub fn new(bucket_secs: u64, max_buckets: usize) -> Self {
        assert!(bucket_secs > 0, "bucket width must be positive");
        assert!(max_buckets >= 2, "need at least two buckets to coarsen");
        Self {
            bucket_secs,
            max_buckets,
            buckets: Vec::new(),
            total: 0.0,
        }
    }

    /// The *current* bucket width in seconds (doubles on coarsening).
    pub fn bucket_secs(&self) -> u64 {
        self.bucket_secs
    }

    /// Per-bucket totals, oldest first.
    pub fn values(&self) -> &[f64] {
        &self.buckets
    }

    /// Number of buckets recorded so far.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Sum over all buckets (preserved exactly across coarsening).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The bucket a time currently falls into.
    pub fn bucket_index(&self, t: SimTime) -> usize {
        (t.0 / (self.bucket_secs * 1_000_000)) as usize
    }

    /// Merges adjacent bucket pairs, doubling the bucket width.
    fn coarsen(&mut self) {
        let merged: Vec<f64> = self
            .buckets
            .chunks(2)
            .map(|pair| pair.iter().sum())
            .collect();
        self.buckets = merged;
        self.bucket_secs *= 2;
    }

    /// Grows to cover bucket `idx`, coarsening first if `idx` would
    /// exceed the bucket cap.
    fn ensure(&mut self, t_end: SimTime) -> usize {
        while self.bucket_index(t_end) >= self.max_buckets {
            self.coarsen();
        }
        let idx = self.bucket_index(t_end);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0.0);
        }
        idx
    }

    /// Adds `amount` spread uniformly over `[start, start + dur_secs]`
    /// across bucket boundaries. Instantaneous samples (`dur_secs <= 0`)
    /// land entirely in `start`'s bucket.
    pub fn add_spread(&mut self, start: SimTime, dur_secs: f64, amount: f64) {
        if amount <= 0.0 {
            return;
        }
        self.total += amount;
        if dur_secs <= 0.0 {
            let idx = self.ensure(start);
            self.buckets[idx] += amount;
            return;
        }
        let end = SimTime(start.0 + (dur_secs * 1e6) as u64);
        // The interval is half-open: an end exactly on a bucket edge
        // puts no mass in (and must not materialize) the next bucket.
        let last = self.ensure(SimTime(end.0.saturating_sub(1).max(start.0)));
        // Bucket geometry may have coarsened inside ensure(); recompute
        // against the final width.
        let bucket_us = self.bucket_secs as f64 * 1e6;
        let start_us = start.0 as f64;
        let end_us = start_us + dur_secs * 1e6;
        let first = self.bucket_index(start);
        #[allow(clippy::needless_range_loop)] // idx participates in bucket arithmetic
        for idx in first..=last {
            let lo = (idx as f64 * bucket_us).max(start_us);
            let hi = ((idx + 1) as f64 * bucket_us).min(end_us);
            if hi > lo {
                self.buckets[idx] += amount * (hi - lo) / (end_us - start_us);
            }
        }
    }
}

/// Exact order statistics over a recorded sample set: the shared
/// tail-latency helper behind both the simulator's repair-duration
/// summaries and `xorbas-node`'s `load_gen` wire measurements.
///
/// Quantiles use the *nearest-rank* definition: for `0 < q <= 1` over
/// `n` ascending samples, the quantile is the sample at 1-based rank
/// `ceil(q * n)` (and `q = 0` is the minimum). On exact small
/// distributions this gives the textbook answers — over `1..=100`,
/// p50 = 50, p99 = 99, p999 = 100 — with no interpolation surprises.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

/// The headline summary [`Percentiles::summary`] produces: count, mean,
/// and the p50/p99/p999 tail the paper-scale experiments report. All
/// values are `0.0` when no samples were recorded.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PercentileSummary {
    /// Number of samples recorded.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: f64,
    /// Median (nearest-rank p50).
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Percentiles {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Non-finite samples are ignored (they would
    /// poison every order statistic).
    pub fn record(&mut self, v: f64) {
        if v.is_finite() {
            self.samples.push(v);
            self.sorted = false;
        }
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Folds another recorder's samples into this one (worker threads
    /// record privately, the reporter merges).
    pub fn merge(&mut self, other: &Percentiles) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The nearest-rank `q`-quantile (`0.0 <= q <= 1.0`), or `0.0` when
    /// empty. Out-of-range `q` clamps.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let q = q.clamp(0.0, 1.0);
        let rank = (q * n as f64).ceil() as usize;
        self.samples[rank.max(1) - 1]
    }

    /// The full summary (sorts once; repeated calls are cheap).
    pub fn summary(&mut self) -> PercentileSummary {
        if self.samples.is_empty() {
            return PercentileSummary::default();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        PercentileSummary {
            count: n,
            mean: self.samples.iter().sum::<f64>() / n as f64,
            min: self.samples[0],
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.samples[n - 1],
        }
    }
}

/// Per-outcome accounting for the serving plane (client reads issued by
/// `Simulation::start_workload`): how each read was served, the bytes it
/// moved, and its latency tail. Serving bytes are deliberately *not*
/// folded into [`CounterSnapshot::hdfs_bytes_read`] — that counter is
/// the §5 repair-traffic measurement, and the scenario pins on it must
/// not shift when a workload rides along.
#[derive(Debug, Clone, Default)]
pub struct ServingStats {
    /// Client reads issued (every outcome below, plus still-parked ones).
    pub reads_issued: u64,
    /// Reads served from a live block.
    pub direct_reads: u64,
    /// Degraded reads decoded with only light (local-group XOR) steps.
    pub degraded_light: u64,
    /// Degraded reads that needed a heavy (Reed-Solomon) decode.
    pub degraded_heavy: u64,
    /// Reads parked on an unavailable block and served after the
    /// BlockFixer (or a returning node) restored it.
    pub fixer_wait_reads: u64,
    /// Reads of permanently lost (unrecoverable-stripe) blocks.
    pub failed_reads: u64,
    /// Recovery events: reads that found their block unavailable
    /// (degraded, fixer-wait, and failed alike), counted at issue time.
    pub recovery_reads: u64,
    /// Recovery events whose stripe had exactly one unavailable block —
    /// the numerator of the Rashmi et al. 98.08% single-block pin
    /// ([`crate::workload::RASHMI_SINGLE_BLOCK_RECOVERY_FRACTION`]).
    pub single_loss_recoveries: u64,
    /// Bytes returned by direct reads.
    pub direct_bytes: f64,
    /// Bytes *fetched* by degraded reads (every surviving lane read to
    /// decode — the client-side analogue of repair traffic).
    pub degraded_bytes: f64,
    /// Bytes returned by fixer-wait reads.
    pub fixer_wait_bytes: f64,
    /// Latency of direct reads, ms.
    pub direct_latency_ms: Percentiles,
    /// Latency of degraded reads, ms.
    pub degraded_latency_ms: Percentiles,
    /// Latency of fixer-wait reads (park time plus final service), ms.
    pub fixer_wait_latency_ms: Percentiles,
}

/// The flat, copyable summary a [`ServingStats`] reduces to: counters,
/// the two headline fractions, and the three latency tails.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServingSummary {
    /// Client reads issued.
    pub reads_issued: u64,
    /// Reads served from a live block.
    pub direct_reads: u64,
    /// Light degraded reads.
    pub degraded_light: u64,
    /// Heavy degraded reads.
    pub degraded_heavy: u64,
    /// Reads served after waiting for the BlockFixer.
    pub fixer_wait_reads: u64,
    /// Reads of permanently lost blocks.
    pub failed_reads: u64,
    /// Reads that found their block unavailable.
    pub recovery_reads: u64,
    /// Recovery events with exactly one unavailable block in the stripe.
    pub single_loss_recoveries: u64,
    /// Fraction of completed reads not served directly.
    pub degraded_fraction: f64,
    /// Fraction of recovery events that were single-block (the Rashmi
    /// et al. pin; `NaN` when no recovery event occurred).
    pub single_loss_fraction: f64,
    /// Bytes returned by direct reads.
    pub direct_bytes: f64,
    /// Bytes fetched by degraded reads.
    pub degraded_bytes: f64,
    /// Bytes returned by fixer-wait reads.
    pub fixer_wait_bytes: f64,
    /// Direct-read latency tail, ms.
    pub direct_ms: PercentileSummary,
    /// Degraded-read latency tail, ms.
    pub degraded_ms: PercentileSummary,
    /// Fixer-wait latency tail, ms.
    pub fixer_wait_ms: PercentileSummary,
}

impl ServingStats {
    /// Records a read served from a live block.
    pub fn record_direct(&mut self, latency_ms: f64, bytes: f64) {
        self.direct_reads += 1;
        self.direct_bytes += bytes;
        self.direct_latency_ms.record(latency_ms);
    }

    /// Records an inline degraded read (`light` per the decode used).
    pub fn record_degraded(&mut self, light: bool, latency_ms: f64, fetched_bytes: f64) {
        if light {
            self.degraded_light += 1;
        } else {
            self.degraded_heavy += 1;
        }
        self.degraded_bytes += fetched_bytes;
        self.degraded_latency_ms.record(latency_ms);
    }

    /// Records a read served after its block was restored.
    pub fn record_fixer_wait(&mut self, latency_ms: f64, bytes: f64) {
        self.fixer_wait_reads += 1;
        self.fixer_wait_bytes += bytes;
        self.fixer_wait_latency_ms.record(latency_ms);
    }

    /// Records a recovery event at issue time (`single_loss` when the
    /// stripe had exactly one unavailable block).
    pub fn record_recovery_event(&mut self, single_loss: bool) {
        self.recovery_reads += 1;
        if single_loss {
            self.single_loss_recoveries += 1;
        }
    }

    /// Reads that completed (every outcome except failures and
    /// still-parked reads).
    pub fn completed(&self) -> u64 {
        self.direct_reads + self.degraded_light + self.degraded_heavy + self.fixer_wait_reads
    }

    /// Completed reads not served directly.
    pub fn degraded_reads(&self) -> u64 {
        self.degraded_light + self.degraded_heavy + self.fixer_wait_reads
    }

    /// Fraction of completed reads not served directly (0 when nothing
    /// completed).
    pub fn degraded_fraction(&self) -> f64 {
        let done = self.completed();
        if done == 0 {
            0.0
        } else {
            self.degraded_reads() as f64 / done as f64
        }
    }

    /// Fraction of recovery events that were single-block (`NaN` when
    /// no read ever found its block unavailable).
    pub fn single_loss_fraction(&self) -> f64 {
        if self.recovery_reads == 0 {
            f64::NAN
        } else {
            self.single_loss_recoveries as f64 / self.recovery_reads as f64
        }
    }

    /// Reduces to the flat summary (sorts the latency recorders once).
    pub fn summary(&mut self) -> ServingSummary {
        ServingSummary {
            reads_issued: self.reads_issued,
            direct_reads: self.direct_reads,
            degraded_light: self.degraded_light,
            degraded_heavy: self.degraded_heavy,
            fixer_wait_reads: self.fixer_wait_reads,
            failed_reads: self.failed_reads,
            recovery_reads: self.recovery_reads,
            single_loss_recoveries: self.single_loss_recoveries,
            degraded_fraction: self.degraded_fraction(),
            single_loss_fraction: self.single_loss_fraction(),
            direct_bytes: self.direct_bytes,
            degraded_bytes: self.degraded_bytes,
            fixer_wait_bytes: self.fixer_wait_bytes,
            direct_ms: self.direct_latency_ms.summary(),
            degraded_ms: self.degraded_latency_ms.summary(),
            fixer_wait_ms: self.fixer_wait_latency_ms.summary(),
        }
    }
}

/// The full metric state of a simulation.
#[derive(Debug, Clone)]
pub struct Metrics {
    counters: CounterSnapshot,
    network_series: BucketSeries,
    disk_series: BucketSeries,
    cpu_busy_series: BucketSeries,
    /// Completed repair jobs.
    pub repair_jobs: Vec<JobSpan>,
    /// Completed workload (e.g. WordCount) jobs.
    pub workload_jobs: Vec<JobSpan>,
    /// Stripes found unrecoverable (data-loss events). Each stripe is
    /// counted once, when the BlockFixer first abandons it.
    pub data_loss_stripes: u64,
    /// Serving-plane (client-read) outcomes, bytes, and latency tails.
    pub serving: ServingStats,
}

impl Metrics {
    /// Metrics with the given series resolution and the default bucket
    /// cap ([`DEFAULT_MAX_BUCKETS`]).
    pub fn new(bucket_secs: u64) -> Self {
        Self::with_max_buckets(bucket_secs, DEFAULT_MAX_BUCKETS)
    }

    /// Metrics with an explicit per-series bucket cap.
    pub fn with_max_buckets(bucket_secs: u64, max_buckets: usize) -> Self {
        Self {
            counters: CounterSnapshot::default(),
            network_series: BucketSeries::new(bucket_secs, max_buckets),
            disk_series: BucketSeries::new(bucket_secs, max_buckets),
            cpu_busy_series: BucketSeries::new(bucket_secs, max_buckets),
            repair_jobs: Vec::new(),
            workload_jobs: Vec::new(),
            data_loss_stripes: 0,
            serving: ServingStats::default(),
        }
    }

    /// The network series' *current* bucket width in seconds.
    pub fn bucket_secs(&self) -> u64 {
        self.network_series.bucket_secs()
    }

    /// Current cumulative counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        self.counters
    }

    /// Network bytes per bucket.
    pub fn network_series(&self) -> &BucketSeries {
        &self.network_series
    }

    /// Disk bytes read per bucket.
    pub fn disk_series(&self) -> &BucketSeries {
        &self.disk_series
    }

    /// Busy slot-seconds per bucket (normalize by slots·bucket for %).
    pub fn cpu_busy_series(&self) -> &BucketSeries {
        &self.cpu_busy_series
    }

    /// Records an HDFS-level block read (also a disk read at the source).
    pub fn record_block_read(&mut self, t: SimTime, bytes: f64) {
        self.counters.hdfs_bytes_read += bytes;
        self.counters.disk_bytes_read += bytes;
        self.disk_series.add_spread(t, 0.0, bytes);
    }

    /// Records network transfer over an interval (called as flows drain).
    pub fn record_network(&mut self, start: SimTime, dur_secs: f64, bytes: f64) {
        self.counters.network_bytes += bytes;
        self.network_series.add_spread(start, dur_secs, bytes);
    }

    /// Records CPU busy time (`slots` busy for `dur_secs` from `start`).
    pub fn record_cpu_busy(&mut self, start: SimTime, dur_secs: f64, slots: usize) {
        self.cpu_busy_series
            .add_spread(start, dur_secs, dur_secs * slots as f64);
    }

    /// Records a reconstructed block.
    pub fn record_block_repaired(&mut self) {
        self.counters.blocks_repaired += 1;
    }

    /// Records a finished repair job.
    pub fn record_repair_job(&mut self, submitted: SimTime, finished: SimTime) {
        self.repair_jobs.push(JobSpan {
            submitted,
            finished,
        });
    }

    /// Records a finished workload job.
    pub fn record_workload_job(&mut self, submitted: SimTime, finished: SimTime) {
        self.workload_jobs.push(JobSpan {
            submitted,
            finished,
        });
    }

    /// Records an unrecoverable stripe.
    pub fn record_data_loss(&mut self) {
        self.data_loss_stripes += 1;
    }

    /// CPU utilization per bucket as a fraction of `total_slots`.
    pub fn cpu_utilization(&self, total_slots: usize) -> Vec<f64> {
        let cap = (total_slots as f64) * self.cpu_busy_series.bucket_secs() as f64;
        self.cpu_busy_series
            .values()
            .iter()
            .map(|&busy| (busy / cap).min(1.0))
            .collect()
    }

    /// Order statistics over completed repair-job durations, in minutes:
    /// the simulator-side consumer of [`Percentiles`] (Fig.-5-style
    /// "how long do repairs take" summaries with a p99/p999 tail).
    pub fn repair_minutes_percentiles(&self) -> PercentileSummary {
        let mut p = Percentiles::new();
        for j in &self.repair_jobs {
            p.record(j.duration().as_mins_f64());
        }
        p.summary()
    }

    /// Repair span between two snapshots: earliest submit / latest finish
    /// of repair jobs recorded after `since` jobs existed. `None` when no
    /// repair job completed in the span.
    pub fn repair_span_since(&self, since: usize) -> Option<(SimTime, SimTime)> {
        let jobs = &self.repair_jobs[since.min(self.repair_jobs.len())..];
        let start = jobs.iter().map(|j| j.submitted).min()?;
        let end = jobs.iter().map(|j| j.finished).max()?;
        Some((start, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new(300);
        m.record_block_read(SimTime::from_secs(10), 64.0);
        m.record_block_read(SimTime::from_secs(20), 36.0);
        let s = m.snapshot();
        assert_eq!(s.hdfs_bytes_read, 100.0);
        assert_eq!(s.disk_bytes_read, 100.0);
    }

    #[test]
    fn spread_splits_across_buckets_proportionally() {
        let mut m = Metrics::new(10);
        // 100 bytes over 20s starting at t=5: buckets get 25/50/25.
        m.record_network(SimTime::from_secs(5), 20.0, 100.0);
        let s = m.network_series().values();
        assert_eq!(s.len(), 3);
        assert!((s[0] - 25.0).abs() < 1e-9);
        assert!((s[1] - 50.0).abs() < 1e-9);
        assert!((s[2] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn instantaneous_amounts_land_in_one_bucket() {
        let mut m = Metrics::new(10);
        m.record_block_read(SimTime::from_secs(25), 7.0);
        assert_eq!(m.disk_series().len(), 3);
        assert_eq!(m.disk_series().values()[2], 7.0);
    }

    #[test]
    fn boundary_instant_lands_in_the_later_bucket() {
        // t = exactly one bucket width belongs to bucket 1, not bucket 0
        // (buckets are half-open [k·w, (k+1)·w)).
        let mut m = Metrics::new(10);
        m.record_block_read(SimTime::from_secs(10), 3.0);
        let s = m.disk_series().values();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[1], 3.0);
    }

    #[test]
    fn boundary_aligned_interval_splits_exactly() {
        // An interval starting and ending exactly on bucket edges puts
        // exactly half in each bucket, nothing in a third.
        let mut m = Metrics::new(10);
        m.record_network(SimTime::from_secs(10), 20.0, 50.0);
        let s = m.network_series().values();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], 0.0);
        assert!((s[1] - 25.0).abs() < 1e-9);
        assert!((s[2] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_records_accumulate_into_earlier_buckets() {
        let mut m = Metrics::new(10);
        m.record_block_read(SimTime::from_secs(55), 1.0);
        m.record_block_read(SimTime::from_secs(5), 2.0); // earlier than the last
        m.record_network(SimTime::from_secs(15), 0.0, 4.0);
        assert_eq!(m.disk_series().len(), 6);
        assert_eq!(m.disk_series().values()[0], 2.0);
        assert_eq!(m.disk_series().values()[5], 1.0);
        assert_eq!(m.network_series().values()[1], 4.0);
        assert_eq!(m.snapshot().disk_bytes_read, 3.0);
    }

    #[test]
    fn series_coarsens_instead_of_growing_unboundedly() {
        let mut s = BucketSeries::new(10, 4);
        for k in 0..32 {
            s.add_spread(SimTime::from_secs(10 * k), 0.0, 1.0);
        }
        // 32 * 10s of samples in <= 4 buckets: width coarsened to 80s.
        assert!(s.len() <= 4);
        assert_eq!(s.bucket_secs(), 80);
        assert!((s.total() - 32.0).abs() < 1e-9);
        assert!((s.values().iter().sum::<f64>() - 32.0).abs() < 1e-9);
        // Mass distribution: each 80s bucket saw 8 samples.
        for &v in s.values() {
            assert!((v - 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn coarsening_preserves_spread_mass() {
        let mut s = BucketSeries::new(10, 4);
        s.add_spread(SimTime::from_secs(5), 20.0, 100.0);
        // Force two coarsenings with a far-future instant sample.
        s.add_spread(SimTime::from_secs(150), 0.0, 1.0);
        assert!(s.len() <= 4);
        assert!((s.total() - 101.0).abs() < 1e-9);
        assert!((s.values().iter().sum::<f64>() - 101.0).abs() < 1e-9);
    }

    #[test]
    fn spread_interval_straddling_a_coarsening_keeps_mass() {
        let mut s = BucketSeries::new(10, 4);
        // The interval itself needs bucket 12 at width 10 -> coarsens
        // inside the same add_spread call.
        s.add_spread(SimTime::from_secs(100), 25.0, 10.0);
        assert!((s.total() - 10.0).abs() < 1e-9);
        assert!((s.values().iter().sum::<f64>() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_utilization_normalizes_by_slots() {
        let mut m = Metrics::new(10);
        // 2 slots busy for 5 s in bucket 0, cluster has 4 slots:
        // utilization = 10 slot-secs / 40 = 0.25.
        m.record_cpu_busy(SimTime::ZERO, 5.0, 2);
        let u = m.cpu_utilization(4);
        assert!((u[0] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn repair_span_since_tracks_new_jobs_only() {
        let mut m = Metrics::new(10);
        m.record_repair_job(SimTime::from_secs(1), SimTime::from_secs(5));
        let mark = m.repair_jobs.len();
        m.record_repair_job(SimTime::from_secs(10), SimTime::from_secs(20));
        m.record_repair_job(SimTime::from_secs(12), SimTime::from_secs(18));
        let (s, e) = m.repair_span_since(mark).unwrap();
        assert_eq!(s, SimTime::from_secs(10));
        assert_eq!(e, SimTime::from_secs(20));
        assert!(m.repair_span_since(3).is_none());
    }

    #[test]
    fn repair_span_since_empty_spans() {
        let m = Metrics::new(10);
        // No jobs at all.
        assert!(m.repair_span_since(0).is_none());
        let mut m = Metrics::new(10);
        m.record_repair_job(SimTime::from_secs(1), SimTime::from_secs(2));
        // Mark past the end: the span is empty even though jobs exist.
        assert!(m.repair_span_since(1).is_none());
        assert!(m.repair_span_since(usize::MAX).is_none());
    }

    #[test]
    fn percentiles_nearest_rank_on_exact_distributions() {
        // 1..=100: p50 = 50, p99 = 99, p999 = 100 (rank ceil(99.9)).
        let mut p = Percentiles::new();
        for v in 1..=100 {
            p.record(v as f64);
        }
        assert_eq!(p.quantile(0.50), 50.0);
        assert_eq!(p.quantile(0.99), 99.0);
        assert_eq!(p.quantile(0.999), 100.0);
        assert_eq!(p.quantile(0.0), 1.0);
        assert_eq!(p.quantile(1.0), 100.0);
        let s = p.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_thousand_samples_hit_exact_tail_ranks() {
        // 1..=1000: rank ceil(0.999 * 1000) = 999 → sample 999.
        let mut p = Percentiles::new();
        for v in (1..=1000).rev() {
            p.record(v as f64); // insertion order must not matter
        }
        assert_eq!(p.quantile(0.5), 500.0);
        assert_eq!(p.quantile(0.99), 990.0);
        assert_eq!(p.quantile(0.999), 999.0);
    }

    #[test]
    fn percentiles_tiny_sets_and_edge_cases() {
        let mut p = Percentiles::new();
        assert_eq!(p.summary(), PercentileSummary::default());
        p.record(7.0);
        // One sample: every quantile is that sample.
        assert_eq!(p.quantile(0.001), 7.0);
        assert_eq!(p.quantile(0.5), 7.0);
        assert_eq!(p.quantile(0.999), 7.0);
        p.record(3.0);
        // Two samples: p50 = rank ceil(1.0) = 1 → the smaller.
        assert_eq!(p.quantile(0.5), 3.0);
        assert_eq!(p.quantile(0.51), 7.0);
        p.record(f64::NAN); // ignored
        assert_eq!(p.len(), 2);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(p.quantile(-1.0), 3.0);
        assert_eq!(p.quantile(2.0), 7.0);
    }

    #[test]
    fn percentiles_merge_matches_single_recorder() {
        let mut a = Percentiles::new();
        let mut b = Percentiles::new();
        let mut whole = Percentiles::new();
        for v in 0..50 {
            a.record(v as f64);
            whole.record(v as f64);
        }
        for v in 50..100 {
            b.record(v as f64);
            whole.record(v as f64);
        }
        a.merge(&b);
        assert_eq!(a.summary(), whole.summary());
    }

    #[test]
    fn repair_minutes_percentiles_summarize_jobs() {
        let mut m = Metrics::new(10);
        for mins in [1u64, 2, 3, 4] {
            m.record_repair_job(SimTime::ZERO, SimTime::from_mins(mins));
        }
        let s = m.repair_minutes_percentiles();
        assert_eq!(s.count, 4);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn job_span_duration() {
        let j = JobSpan {
            submitted: SimTime::from_secs(10),
            finished: SimTime::from_secs(70),
        };
        assert_eq!(j.duration(), SimTime::from_secs(60));
    }
}
