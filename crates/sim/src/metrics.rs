//! Measurement collection: the §5.1 evaluation metrics.
//!
//! * **HDFS Bytes Read** — data read by repair/degraded-read tasks.
//! * **Network Traffic** — bytes crossing the network (read streams and
//!   block write-back), as AWS CloudWatch would report.
//! * **Repair Duration** — first repair-job launch to last completion.
//!
//! Cumulative counters support per-event deltas (Fig. 4); bucketed time
//! series reproduce the 5-minute-resolution plots of Fig. 5.

use crate::time::SimTime;

/// A point-in-time snapshot of the cumulative counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CounterSnapshot {
    /// Cumulative HDFS bytes read.
    pub hdfs_bytes_read: f64,
    /// Cumulative network bytes moved.
    pub network_bytes: f64,
    /// Cumulative disk bytes read.
    pub disk_bytes_read: f64,
    /// Blocks reconstructed so far.
    pub blocks_repaired: u64,
}

/// One completed job's span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpan {
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time.
    pub finished: SimTime,
}

impl JobSpan {
    /// Wall-clock duration.
    pub fn duration(&self) -> SimTime {
        self.finished - self.submitted
    }
}

/// The full metric state of a simulation.
#[derive(Debug, Clone)]
pub struct Metrics {
    bucket_secs: u64,
    counters: CounterSnapshot,
    /// Network bytes per bucket.
    pub network_series: Vec<f64>,
    /// Disk bytes read per bucket.
    pub disk_series: Vec<f64>,
    /// Busy slot-seconds per bucket (normalize by slots·bucket for %).
    pub cpu_busy_series: Vec<f64>,
    /// Completed repair jobs.
    pub repair_jobs: Vec<JobSpan>,
    /// Completed workload (e.g. WordCount) jobs.
    pub workload_jobs: Vec<JobSpan>,
    /// Stripes found unrecoverable (data-loss events).
    pub data_loss_stripes: u64,
}

impl Metrics {
    /// Metrics with the given series resolution.
    pub fn new(bucket_secs: u64) -> Self {
        assert!(bucket_secs > 0, "bucket width must be positive");
        Self {
            bucket_secs,
            counters: CounterSnapshot::default(),
            network_series: Vec::new(),
            disk_series: Vec::new(),
            cpu_busy_series: Vec::new(),
            repair_jobs: Vec::new(),
            workload_jobs: Vec::new(),
            data_loss_stripes: 0,
        }
    }

    /// Series bucket width in seconds.
    pub fn bucket_secs(&self) -> u64 {
        self.bucket_secs
    }

    /// Current cumulative counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        self.counters
    }

    /// The series bucket a time falls into.
    pub fn bucket_index(&self, t: SimTime) -> usize {
        (t.0 / (self.bucket_secs * 1_000_000)) as usize
    }

    fn ensure(series: &mut Vec<f64>, idx: usize) {
        if series.len() <= idx {
            series.resize(idx + 1, 0.0);
        }
    }

    /// Adds `amount` to `series`, spread uniformly over
    /// `[start, start + dur_secs]` across bucket boundaries.
    fn add_spread(
        bucket_secs: u64,
        series: &mut Vec<f64>,
        start: SimTime,
        dur_secs: f64,
        amount: f64,
    ) {
        if amount <= 0.0 {
            return;
        }
        let bucket_us = bucket_secs as f64 * 1e6;
        if dur_secs <= 0.0 {
            let idx = (start.0 as f64 / bucket_us) as usize;
            Self::ensure(series, idx);
            series[idx] += amount;
            return;
        }
        let start_us = start.0 as f64;
        let end_us = start_us + dur_secs * 1e6;
        let first = (start_us / bucket_us) as usize;
        let last = (end_us / bucket_us) as usize;
        Self::ensure(series, last);
        #[allow(clippy::needless_range_loop)] // idx participates in bucket arithmetic
        for idx in first..=last {
            let lo = (idx as f64 * bucket_us).max(start_us);
            let hi = ((idx + 1) as f64 * bucket_us).min(end_us);
            if hi > lo {
                series[idx] += amount * (hi - lo) / (end_us - start_us);
            }
        }
    }

    /// Records an HDFS-level block read (also a disk read at the source).
    pub fn record_block_read(&mut self, t: SimTime, bytes: f64) {
        self.counters.hdfs_bytes_read += bytes;
        self.counters.disk_bytes_read += bytes;
        let secs = self.bucket_secs;
        Self::add_spread(secs, &mut self.disk_series, t, 0.0, bytes);
    }

    /// Records network transfer over an interval (called as flows drain).
    pub fn record_network(&mut self, start: SimTime, dur_secs: f64, bytes: f64) {
        self.counters.network_bytes += bytes;
        let secs = self.bucket_secs;
        Self::add_spread(secs, &mut self.network_series, start, dur_secs, bytes);
    }

    /// Records CPU busy time (`slots` busy for `dur_secs` from `start`).
    pub fn record_cpu_busy(&mut self, start: SimTime, dur_secs: f64, slots: usize) {
        let secs = self.bucket_secs;
        Self::add_spread(
            secs,
            &mut self.cpu_busy_series,
            start,
            dur_secs,
            dur_secs * slots as f64,
        );
    }

    /// Records a reconstructed block.
    pub fn record_block_repaired(&mut self) {
        self.counters.blocks_repaired += 1;
    }

    /// Records a finished repair job.
    pub fn record_repair_job(&mut self, submitted: SimTime, finished: SimTime) {
        self.repair_jobs.push(JobSpan {
            submitted,
            finished,
        });
    }

    /// Records a finished workload job.
    pub fn record_workload_job(&mut self, submitted: SimTime, finished: SimTime) {
        self.workload_jobs.push(JobSpan {
            submitted,
            finished,
        });
    }

    /// Records an unrecoverable stripe.
    pub fn record_data_loss(&mut self) {
        self.data_loss_stripes += 1;
    }

    /// CPU utilization per bucket as a fraction of `total_slots`.
    pub fn cpu_utilization(&self, total_slots: usize) -> Vec<f64> {
        let cap = (total_slots as f64) * self.bucket_secs as f64;
        self.cpu_busy_series
            .iter()
            .map(|&busy| (busy / cap).min(1.0))
            .collect()
    }

    /// Repair span between two snapshots: earliest submit / latest finish
    /// of repair jobs recorded after `since` jobs existed.
    pub fn repair_span_since(&self, since: usize) -> Option<(SimTime, SimTime)> {
        let jobs = &self.repair_jobs[since.min(self.repair_jobs.len())..];
        let start = jobs.iter().map(|j| j.submitted).min()?;
        let end = jobs.iter().map(|j| j.finished).max()?;
        Some((start, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new(300);
        m.record_block_read(SimTime::from_secs(10), 64.0);
        m.record_block_read(SimTime::from_secs(20), 36.0);
        let s = m.snapshot();
        assert_eq!(s.hdfs_bytes_read, 100.0);
        assert_eq!(s.disk_bytes_read, 100.0);
    }

    #[test]
    fn spread_splits_across_buckets_proportionally() {
        let mut m = Metrics::new(10);
        // 100 bytes over 20s starting at t=5: buckets get 25/50/25.
        m.record_network(SimTime::from_secs(5), 20.0, 100.0);
        assert_eq!(m.network_series.len(), 3);
        assert!((m.network_series[0] - 25.0).abs() < 1e-9);
        assert!((m.network_series[1] - 50.0).abs() < 1e-9);
        assert!((m.network_series[2] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn instantaneous_amounts_land_in_one_bucket() {
        let mut m = Metrics::new(10);
        m.record_block_read(SimTime::from_secs(25), 7.0);
        assert_eq!(m.disk_series.len(), 3);
        assert_eq!(m.disk_series[2], 7.0);
    }

    #[test]
    fn cpu_utilization_normalizes_by_slots() {
        let mut m = Metrics::new(10);
        // 2 slots busy for 5 s in bucket 0, cluster has 4 slots:
        // utilization = 10 slot-secs / 40 = 0.25.
        m.record_cpu_busy(SimTime::ZERO, 5.0, 2);
        let u = m.cpu_utilization(4);
        assert!((u[0] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn repair_span_since_tracks_new_jobs_only() {
        let mut m = Metrics::new(10);
        m.record_repair_job(SimTime::from_secs(1), SimTime::from_secs(5));
        let mark = m.repair_jobs.len();
        m.record_repair_job(SimTime::from_secs(10), SimTime::from_secs(20));
        m.record_repair_job(SimTime::from_secs(12), SimTime::from_secs(18));
        let (s, e) = m.repair_span_since(mark).unwrap();
        assert_eq!(s, SimTime::from_secs(10));
        assert_eq!(e, SimTime::from_secs(20));
        assert!(m.repair_span_since(3).is_none());
    }

    #[test]
    fn job_span_duration() {
        let j = JobSpan {
            submitted: SimTime::from_secs(10),
            finished: SimTime::from_secs(70),
        };
        assert_eq!(j.duration(), SimTime::from_secs(60));
    }
}
