//! Flow-level network model with max-min fair bandwidth sharing.
//!
//! Every transfer is a *flow* crossing three links: the source's NIC
//! uplink, the shared core switch, and the destination's NIC downlink.
//! Rates are assigned by progressive filling (the classic max-min fair
//! allocation) and recomputed whenever the flow set changes, which is
//! exact for this link model and cheap at the paper's scales.
//!
//! This captures the §5.2.3 phenomenon the evaluation leans on: many
//! concurrent repair streams share "a single top-level switch which
//! becomes saturated", so schemes that move fewer bytes finish
//! disproportionately faster.

use std::collections::BTreeMap;

use crate::hdfs::NodeId;

/// Identifies an active flow.
pub type FlowId = u64;

/// An active transfer.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Bytes still to move.
    pub remaining: f64,
    /// Current max-min fair rate, bytes/s.
    pub rate: f64,
    /// Owning task (opaque to the network).
    pub owner: u64,
}

/// The network state.
#[derive(Debug, Clone)]
pub struct Network {
    nodes: usize,
    nic_bytes_per_sec: f64,
    core_bytes_per_sec: f64,
    flows: BTreeMap<FlowId, Flow>,
    next_id: FlowId,
}

impl Network {
    /// A network of `nodes` full-duplex NICs behind one core switch.
    pub fn new(nodes: usize, nic_bps: f64, core_bps: f64) -> Self {
        assert!(
            nic_bps > 0.0 && core_bps > 0.0,
            "bandwidths must be positive"
        );
        Self {
            nodes,
            nic_bytes_per_sec: nic_bps / 8.0,
            core_bytes_per_sec: core_bps / 8.0,
            flows: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// Starts a flow; `src != dst` (local reads are instantaneous and
    /// never enter the network). Returns its id.
    pub fn start_flow(&mut self, src: NodeId, dst: NodeId, bytes: f64, owner: u64) -> FlowId {
        assert_ne!(src, dst, "local transfers do not use the network");
        assert!(bytes > 0.0, "flows must carry bytes");
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                src,
                dst,
                remaining: bytes,
                rate: 0.0,
                owner,
            },
        );
        self.recompute_rates();
        id
    }

    /// Cancels a flow (e.g. its endpoint failed). Returns the flow if it
    /// existed.
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<Flow> {
        let f = self.flows.remove(&id);
        if f.is_some() {
            self.recompute_rates();
        }
        f
    }

    /// Ids of flows touching `node` (as source or destination).
    pub fn flows_touching(&self, node: NodeId) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|(_, f)| f.src == node || f.dst == node)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// A flow by id.
    pub fn flow(&self, id: FlowId) -> Option<&Flow> {
        self.flows.get(&id)
    }

    /// Seconds until the earliest flow completes at current rates;
    /// `None` when idle.
    pub fn earliest_completion_secs(&self) -> Option<f64> {
        self.flows
            .values()
            .map(|f| f.remaining / f.rate)
            .min_by(|a, b| a.partial_cmp(b).expect("rates are finite"))
    }

    /// Advances all flows by `dt` seconds. Returns `(bytes_moved,
    /// completed_flows)`; completed flows are removed and rates
    /// recomputed.
    pub fn advance(&mut self, dt: f64) -> (f64, Vec<(FlowId, Flow)>) {
        let mut moved = 0.0;
        let mut done = Vec::new();
        for (&id, f) in self.flows.iter_mut() {
            let step = f.rate * dt;
            moved += step.min(f.remaining);
            f.remaining -= step;
            // Tolerance: rate-quantization can leave a few bytes.
            if f.remaining <= 1e-6 {
                done.push(id);
            }
        }
        let mut completed = Vec::with_capacity(done.len());
        for id in done {
            let f = self.flows.remove(&id).expect("completed flow exists");
            completed.push((id, f));
        }
        if !completed.is_empty() {
            self.recompute_rates();
        }
        (moved, completed)
    }

    /// Max-min fair progressive filling over uplinks, downlinks and the
    /// core link.
    fn recompute_rates(&mut self) {
        let n = self.nodes;
        let core_link = 2 * n;
        let mut remaining_cap = vec![self.nic_bytes_per_sec; 2 * n];
        remaining_cap.push(self.core_bytes_per_sec);

        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let links_of: BTreeMap<FlowId, [usize; 3]> = ids
            .iter()
            .map(|&id| {
                let f = &self.flows[&id];
                (id, [f.src, n + f.dst, core_link])
            })
            .collect();
        let mut unassigned: Vec<FlowId> = ids;
        while !unassigned.is_empty() {
            // Count unassigned flows per link.
            let mut load = vec![0usize; 2 * n + 1];
            for id in &unassigned {
                for &l in &links_of[id] {
                    load[l] += 1;
                }
            }
            // Bottleneck link: minimal fair share.
            let (bottleneck, share) = (0..=core_link)
                .filter(|&l| load[l] > 0)
                .map(|l| (l, remaining_cap[l] / load[l] as f64))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("unassigned flows use some link");
            // Freeze every unassigned flow on the bottleneck at `share`.
            let (frozen, rest): (Vec<FlowId>, Vec<FlowId>) = unassigned
                .into_iter()
                .partition(|id| links_of[id].contains(&bottleneck));
            for id in frozen {
                self.flows.get_mut(&id).expect("flow exists").rate = share;
                for &l in &links_of[&id] {
                    remaining_cap[l] = (remaining_cap[l] - share).max(0.0);
                }
            }
            unassigned = rest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        // 4 nodes, 1 Gbps NICs (125 MB/s), 2 Gbps core (250 MB/s).
        Network::new(4, 1e9, 2e9)
    }

    #[test]
    fn single_flow_gets_nic_rate() {
        let mut n = net();
        n.start_flow(0, 1, 125e6, 0);
        assert!((n.earliest_completion_secs().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_into_one_destination_share_its_downlink() {
        let mut n = net();
        n.start_flow(0, 2, 1e6, 0);
        n.start_flow(1, 2, 1e6, 1);
        for f in [0u64, 1u64] {
            assert!((n.flow(f).unwrap().rate - 62.5e6).abs() < 1.0);
        }
    }

    #[test]
    fn core_switch_saturates_many_disjoint_flows() {
        // 4 disjoint node pairs would each want 125 MB/s = 500 MB/s total,
        // but the 250 MB/s core caps them at 62.5 MB/s each.
        let mut n = Network::new(8, 1e9, 2e9);
        for i in 0..4 {
            n.start_flow(i, 4 + i, 1e6, i as u64);
        }
        for i in 0..4 {
            assert!((n.flow(i as u64).unwrap().rate - 62.5e6).abs() < 1.0);
        }
    }

    #[test]
    fn max_min_gives_leftover_to_unbottlenecked_flows() {
        // Flows: A: 0->1, B: 0->2, C: 3->2. Uplink 0 carries A,B;
        // downlink 2 carries B,C. Fair shares: A=B=62.5 (uplink 0);
        // C gets the rest of downlink 2: 62.5... then core has room, so
        // C could go to 125-62.5 = 62.5. All equal here; check totals.
        let mut n = net();
        let a = n.start_flow(0, 1, 1e6, 0);
        let b = n.start_flow(0, 2, 1e6, 1);
        let c = n.start_flow(3, 2, 1e6, 2);
        let ra = n.flow(a).unwrap().rate;
        let rb = n.flow(b).unwrap().rate;
        let rc = n.flow(c).unwrap().rate;
        assert!(ra + rb <= 125e6 + 1.0, "uplink 0 respected");
        assert!(rb + rc <= 125e6 + 1.0, "downlink 2 respected");
        assert!(ra + rb + rc <= 250e6 + 1.0, "core respected");
        // C is limited only by downlink 2, shared with B: C >= B.
        assert!(rc >= rb - 1.0);
    }

    #[test]
    fn advance_completes_flows_and_reports_bytes() {
        let mut n = net();
        n.start_flow(0, 1, 125e6, 7); // 1 second at full NIC rate
        let (moved, done) = n.advance(0.5);
        assert!((moved - 62.5e6).abs() < 1.0);
        assert!(done.is_empty());
        let (moved2, done2) = n.advance(0.5);
        assert!((moved2 - 62.5e6).abs() < 1.0);
        assert_eq!(done2.len(), 1);
        assert_eq!(done2[0].1.owner, 7);
        assert_eq!(n.active_flows(), 0);
    }

    #[test]
    fn completion_frees_bandwidth_for_survivors() {
        let mut n = net();
        n.start_flow(0, 2, 10e6, 0);
        let slow = n.start_flow(1, 2, 125e6, 1);
        // Both share downlink 2 at 62.5 MB/s.
        assert!((n.flow(slow).unwrap().rate - 62.5e6).abs() < 1.0);
        // After the small flow drains, the survivor gets the full NIC.
        let dt = n.earliest_completion_secs().unwrap();
        n.advance(dt);
        assert!((n.flow(slow).unwrap().rate - 125e6).abs() < 1.0);
    }

    #[test]
    fn cancel_removes_and_rebalances() {
        let mut n = net();
        let a = n.start_flow(0, 2, 1e6, 0);
        let b = n.start_flow(1, 2, 1e6, 1);
        n.cancel_flow(a).unwrap();
        assert!((n.flow(b).unwrap().rate - 125e6).abs() < 1.0);
        assert!(n.cancel_flow(a).is_none());
    }

    #[test]
    fn flows_touching_finds_both_directions() {
        let mut n = net();
        let a = n.start_flow(0, 1, 1e6, 0);
        let b = n.start_flow(2, 0, 1e6, 1);
        let c = n.start_flow(2, 3, 1e6, 2);
        let mut touching = n.flows_touching(0);
        touching.sort_unstable();
        assert_eq!(touching, vec![a, b]);
        assert!(!n.flows_touching(1).contains(&c));
    }

    #[test]
    #[should_panic(expected = "local transfers")]
    fn local_flow_rejected() {
        let mut n = net();
        n.start_flow(1, 1, 1e6, 0);
    }
}
