//! Flow-level network model with max-min fair bandwidth sharing.
//!
//! Every transfer is a *flow* crossing three links: the source's NIC
//! uplink, the shared core switch, and the destination's NIC downlink.
//! Rates are assigned by progressive filling (the classic max-min fair
//! allocation), which is exact for this link model.
//!
//! This captures the §5.2.3 phenomenon the evaluation leans on: many
//! concurrent repair streams share "a single top-level switch which
//! becomes saturated", so schemes that move fewer bytes finish
//! disproportionately faster.
//!
//! # Scaling design
//!
//! A warehouse repair storm keeps thousands of flows in flight and
//! completes them one at a time, so both the per-event pass and the
//! rate recomputation are engineered down:
//!
//! * **Generational slab storage** — flows live in a slot vector with a
//!   dense active-list (O(1) insert/remove, contiguous iteration);
//!   [`FlowId`]s embed slot and generation so stale ids simply miss.
//! * **Lazy recomputation** — flow arrivals and cancellations only mark
//!   the allocation dirty; one progressive-filling pass runs when rates
//!   are next observed, so a scheduling round that starts hundreds of
//!   flows pays for one recompute.
//! * **Sparse, quantized filling** — the pass touches only links that
//!   carry active flows (scratch reset via a touched-list), and links
//!   within 0.1% of the minimal fair share freeze as one bottleneck
//!   class. Symmetric storms collapse to one round; long-drifted storms
//!   stay at a handful of rounds instead of one per NIC.

use crate::hdfs::NodeId;

/// Identifies an active flow (slot index in the low 32 bits, slot
/// generation in the high 32 — stale ids never alias a reused slot).
pub type FlowId = u64;

/// An active transfer.
#[derive(Debug, Clone, Copy)]
pub struct Flow {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Bytes still to move.
    pub remaining: f64,
    /// Current max-min fair rate, bytes/s.
    pub rate: f64,
    /// Owning task (opaque to the network).
    pub owner: u64,
}

/// One slab slot: the flow payload plus its generation and its index in
/// the dense active list (`NOT_ACTIVE` when free).
#[derive(Debug, Clone)]
struct Slot {
    gen: u32,
    active_idx: u32,
    flow: Flow,
}

const NOT_ACTIVE: u32 = u32::MAX;

fn make_id(slot: u32, gen: u32) -> FlowId {
    ((gen as u64) << 32) | slot as u64
}

fn split_id(id: FlowId) -> (u32, u32) {
    (id as u32, (id >> 32) as u32)
}

/// The network state.
#[derive(Debug, Clone)]
pub struct Network {
    nodes: usize,
    nic_bytes_per_sec: f64,
    core_bytes_per_sec: f64,
    slots: Vec<Slot>,
    /// Dense list of occupied slot indices (iteration order = age).
    active: Vec<u32>,
    free: Vec<u32>,
    rates_dirty: bool,
    /// Scratch: remaining capacity per link (2n NICs + core), reused.
    cap_scratch: Vec<f64>,
    /// Scratch: unassigned-flow count per link, reused.
    load_scratch: Vec<usize>,
    /// Scratch: links touched by the current pass (for O(active) reset).
    touched: Vec<usize>,
    /// Scratch: unassigned slot list for the filling pass.
    unassigned_scratch: Vec<u32>,
    /// Scratch: `(age, id)` completion list for [`Network::advance`].
    done_scratch: Vec<(u64, FlowId)>,
}

impl Network {
    /// A network of `nodes` full-duplex NICs behind one core switch.
    pub fn new(nodes: usize, nic_bps: f64, core_bps: f64) -> Self {
        assert!(
            nic_bps > 0.0 && core_bps > 0.0,
            "bandwidths must be positive"
        );
        Self {
            nodes,
            nic_bytes_per_sec: nic_bps / 8.0,
            core_bytes_per_sec: core_bps / 8.0,
            slots: Vec::new(),
            active: Vec::new(),
            free: Vec::new(),
            rates_dirty: false,
            cap_scratch: vec![0.0; 2 * nodes + 1],
            load_scratch: vec![0; 2 * nodes + 1],
            touched: Vec::new(),
            unassigned_scratch: Vec::new(),
            done_scratch: Vec::new(),
        }
    }

    /// Starts a flow; `src != dst` (local reads are instantaneous and
    /// never enter the network). Returns its id. Rates are recomputed
    /// lazily at the next observation.
    pub fn start_flow(&mut self, src: NodeId, dst: NodeId, bytes: f64, owner: u64) -> FlowId {
        assert_ne!(src, dst, "local transfers do not use the network");
        assert!(bytes > 0.0, "flows must carry bytes");
        let flow = Flow {
            src,
            dst,
            remaining: bytes,
            rate: 0.0,
            owner,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                let e = &mut self.slots[s as usize];
                e.gen = e.gen.wrapping_add(1);
                e.active_idx = self.active.len() as u32;
                e.flow = flow;
                s
            }
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    active_idx: self.active.len() as u32,
                    flow,
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.active.push(slot);
        self.rates_dirty = true;
        make_id(slot, self.slots[slot as usize].gen)
    }

    /// Looks up a live slot index for an id, or `None` if stale/free.
    fn resolve(&self, id: FlowId) -> Option<u32> {
        let (slot, gen) = split_id(id);
        let e = self.slots.get(slot as usize)?;
        (e.gen == gen && e.active_idx != NOT_ACTIVE).then_some(slot)
    }

    /// Removes a slot from the active list and frees it.
    // xlint::hot-path(rate-recompute)
    fn release(&mut self, slot: u32) -> Flow {
        let idx = self.slots[slot as usize].active_idx as usize;
        self.slots[slot as usize].active_idx = NOT_ACTIVE;
        let removed = self.active.swap_remove(idx);
        debug_assert_eq!(removed, slot);
        if let Some(&moved) = self.active.get(idx) {
            self.slots[moved as usize].active_idx = idx as u32;
        }
        self.free.push(slot);
        self.slots[slot as usize].flow
    }

    /// Cancels a flow (e.g. its endpoint failed). Returns the flow if it
    /// existed.
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<Flow> {
        let slot = self.resolve(id)?;
        let f = self.release(slot);
        self.rates_dirty = true;
        Some(f)
    }

    /// Ids of flows touching `node` (as source or destination).
    pub fn flows_touching(&self, node: NodeId) -> Vec<FlowId> {
        self.active
            .iter()
            .filter_map(|&s| {
                let e = &self.slots[s as usize];
                (e.flow.src == node || e.flow.dst == node).then(|| make_id(s, e.gen))
            })
            .collect()
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// A flow by id (with rates brought up to date).
    pub fn flow(&mut self, id: FlowId) -> Option<&Flow> {
        self.ensure_rates();
        let slot = self.resolve(id)?;
        Some(&self.slots[slot as usize].flow)
    }

    // xlint::hot-path(rate-recompute) begin
    // Per-event-loop-step surface: completion scan, flow advancement,
    // and the max-min filling pass. All state lives in reused scratch
    // vectors on `self` (or the caller's buffer); amortized `push` onto
    // those is the only growth.

    /// Seconds until the earliest flow completes at current rates;
    /// `None` when idle.
    pub fn earliest_completion_secs(&mut self) -> Option<f64> {
        self.ensure_rates();
        self.active
            .iter()
            .map(|&s| {
                let f = &self.slots[s as usize].flow;
                f.remaining / f.rate
            })
            .min_by(f64::total_cmp)
    }

    /// Advances all flows by `dt` seconds, appending completed flows to
    /// `completed` (cleared first) in flow age order (deterministic).
    /// Returns the bytes moved; completed flows are removed and rates
    /// recomputed lazily afterwards.
    pub fn advance(&mut self, dt: f64, completed: &mut Vec<(FlowId, Flow)>) -> f64 {
        completed.clear();
        self.ensure_rates();
        let mut moved = 0.0;
        let mut done = std::mem::take(&mut self.done_scratch);
        done.clear();
        for (age, &s) in self.active.iter().enumerate() {
            let e = &mut self.slots[s as usize];
            let step = e.flow.rate * dt;
            moved += step.min(e.flow.remaining);
            e.flow.remaining -= step;
            // Tolerance: rate-quantization can leave a few bytes.
            if e.flow.remaining <= 1e-6 {
                done.push((age as u64, make_id(s, e.gen)));
            }
        }
        // swap_remove perturbs active order; sort by age for stable
        // completion order regardless of removal sequence.
        done.sort_unstable();
        for &(_, id) in &done {
            // The ids were collected from live slots above; a miss here
            // would mean the slab was corrupted mid-loop.
            let Some(slot) = self.resolve(id) else {
                debug_assert!(false, "completed flow {id} vanished");
                continue;
            };
            completed.push((id, self.release(slot)));
        }
        self.done_scratch = done;
        if !completed.is_empty() {
            self.rates_dirty = true;
        }
        moved
    }

    /// The three links a flow crosses: source uplink, destination
    /// downlink, shared core.
    fn links_of(&self, slot: u32) -> [usize; 3] {
        let f = &self.slots[slot as usize].flow;
        [f.src, self.nodes + f.dst, 2 * self.nodes]
    }

    fn ensure_rates(&mut self) {
        if self.rates_dirty {
            self.recompute_rates();
            self.rates_dirty = false;
        }
    }

    /// Max-min fair progressive filling over uplinks, downlinks and the
    /// core link, touching only links used by active flows.
    fn recompute_rates(&mut self) {
        // Reset scratch state for the links the last pass touched, then
        // seed capacities/loads for the links active flows use.
        let core_link = 2 * self.nodes;
        for &l in &self.touched {
            self.load_scratch[l] = 0;
        }
        self.touched.clear();
        let mut unassigned = std::mem::take(&mut self.unassigned_scratch);
        unassigned.clear();
        unassigned.extend_from_slice(&self.active);
        for &s in &unassigned {
            for l in self.links_of(s) {
                if self.load_scratch[l] == 0 {
                    self.touched.push(l);
                    self.cap_scratch[l] = if l == core_link {
                        self.core_bytes_per_sec
                    } else {
                        self.nic_bytes_per_sec
                    };
                }
                self.load_scratch[l] += 1;
            }
        }
        while !unassigned.is_empty() {
            // Minimal fair share among loaded links. Links within 0.1%
            // of it freeze together as one bottleneck class: exact
            // progressive filling would distinguish shares that drifted
            // apart by float ulps as flows start and finish mid-stream,
            // degenerating to one round per NIC on long runs; the
            // ≤0.1% rate error is far below anything the §5 metrics
            // resolve. Every round freezes at least the minimal link's
            // flows, so the pass terminates.
            let share = self
                .touched
                .iter()
                .copied()
                .filter(|&l| self.load_scratch[l] > 0)
                .map(|l| self.cap_scratch[l] / self.load_scratch[l] as f64)
                .min_by(f64::total_cmp);
            // Every unassigned flow loads three links, so a round with
            // no loaded link is unreachable; bail rather than spin.
            let Some(share) = share else {
                debug_assert!(false, "unassigned flows use some link");
                break;
            };
            let cutoff = share * (1.0 + 1e-3);
            // Freeze every unassigned flow crossing a bottleneck link at
            // `share`; swap-retain keeps the pass allocation-free.
            let mut i = 0;
            while i < unassigned.len() {
                let s = unassigned[i];
                let links = self.links_of(s);
                let bottlenecked = links.iter().any(|&l| {
                    self.load_scratch[l] > 0
                        && self.cap_scratch[l] / self.load_scratch[l] as f64 <= cutoff
                });
                if bottlenecked {
                    self.slots[s as usize].flow.rate = share;
                    for l in links {
                        self.cap_scratch[l] = (self.cap_scratch[l] - share).max(0.0);
                        self.load_scratch[l] -= 1;
                    }
                    unassigned.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
        self.unassigned_scratch = unassigned;
    }
    // xlint::hot-path(rate-recompute) end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        // 4 nodes, 1 Gbps NICs (125 MB/s), 2 Gbps core (250 MB/s).
        Network::new(4, 1e9, 2e9)
    }

    #[test]
    fn single_flow_gets_nic_rate() {
        let mut n = net();
        n.start_flow(0, 1, 125e6, 0);
        assert!((n.earliest_completion_secs().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_into_one_destination_share_its_downlink() {
        let mut n = net();
        let a = n.start_flow(0, 2, 1e6, 0);
        let b = n.start_flow(1, 2, 1e6, 1);
        for f in [a, b] {
            assert!((n.flow(f).unwrap().rate - 62.5e6).abs() < 1.0);
        }
    }

    #[test]
    fn core_switch_saturates_many_disjoint_flows() {
        // 4 disjoint node pairs would each want 125 MB/s = 500 MB/s total,
        // but the 250 MB/s core caps them at 62.5 MB/s each.
        let mut n = Network::new(8, 1e9, 2e9);
        let ids: Vec<FlowId> = (0..4)
            .map(|i| n.start_flow(i, 4 + i, 1e6, i as u64))
            .collect();
        for id in ids {
            assert!((n.flow(id).unwrap().rate - 62.5e6).abs() < 1.0);
        }
    }

    #[test]
    fn max_min_gives_leftover_to_unbottlenecked_flows() {
        // Flows: A: 0->1, B: 0->2, C: 3->2. Uplink 0 carries A,B;
        // downlink 2 carries B,C. Fair shares: A=B=62.5 (uplink 0);
        // C gets the rest of downlink 2: 62.5... then core has room, so
        // C could go to 125-62.5 = 62.5. All equal here; check totals.
        let mut n = net();
        let a = n.start_flow(0, 1, 1e6, 0);
        let b = n.start_flow(0, 2, 1e6, 1);
        let c = n.start_flow(3, 2, 1e6, 2);
        let ra = n.flow(a).unwrap().rate;
        let rb = n.flow(b).unwrap().rate;
        let rc = n.flow(c).unwrap().rate;
        assert!(ra + rb <= 125e6 + 1.0, "uplink 0 respected");
        assert!(rb + rc <= 125e6 + 1.0, "downlink 2 respected");
        assert!(ra + rb + rc <= 250e6 + 1.0, "core respected");
        // C is limited only by downlink 2, shared with B: C >= B.
        assert!(rc >= rb - 1.0);
    }

    #[test]
    fn advance_completes_flows_and_reports_bytes() {
        let mut n = net();
        n.start_flow(0, 1, 125e6, 7); // 1 second at full NIC rate
        let mut done = Vec::new();
        let moved = n.advance(0.5, &mut done);
        assert!((moved - 62.5e6).abs() < 1.0);
        assert!(done.is_empty());
        let moved2 = n.advance(0.5, &mut done);
        assert!((moved2 - 62.5e6).abs() < 1.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.owner, 7);
        assert_eq!(n.active_flows(), 0);
    }

    #[test]
    fn completion_frees_bandwidth_for_survivors() {
        let mut n = net();
        n.start_flow(0, 2, 10e6, 0);
        let slow = n.start_flow(1, 2, 125e6, 1);
        // Both share downlink 2 at 62.5 MB/s.
        assert!((n.flow(slow).unwrap().rate - 62.5e6).abs() < 1.0);
        // After the small flow drains, the survivor gets the full NIC.
        let dt = n.earliest_completion_secs().unwrap();
        n.advance(dt, &mut Vec::new());
        assert!((n.flow(slow).unwrap().rate - 125e6).abs() < 1.0);
    }

    #[test]
    fn cancel_removes_and_rebalances() {
        let mut n = net();
        let a = n.start_flow(0, 2, 1e6, 0);
        let b = n.start_flow(1, 2, 1e6, 1);
        n.cancel_flow(a).unwrap();
        assert!((n.flow(b).unwrap().rate - 125e6).abs() < 1.0);
        assert!(n.cancel_flow(a).is_none());
    }

    #[test]
    fn stale_ids_never_alias_reused_slots() {
        let mut n = net();
        let a = n.start_flow(0, 2, 1e6, 0);
        n.cancel_flow(a).unwrap();
        // The slot is reused with a bumped generation: the old id stays
        // dead even though the slot is live again.
        let b = n.start_flow(1, 3, 1e6, 1);
        assert!(n.cancel_flow(a).is_none());
        assert!(n.flow(a).is_none());
        assert!(n.flow(b).is_some());
    }

    #[test]
    fn flows_touching_finds_both_directions() {
        let mut n = net();
        let a = n.start_flow(0, 1, 1e6, 0);
        let b = n.start_flow(2, 0, 1e6, 1);
        let c = n.start_flow(2, 3, 1e6, 2);
        let mut touching = n.flows_touching(0);
        touching.sort_unstable();
        let mut expect = vec![a, b];
        expect.sort_unstable();
        assert_eq!(touching, expect);
        assert!(!n.flows_touching(1).contains(&c));
    }

    #[test]
    fn lazy_recompute_batches_flow_churn() {
        // A burst of starts and cancels costs one recompute when rates
        // are next observed; every observation sees consistent rates.
        let mut n = Network::new(100, 1e9, 1e12);
        let ids: Vec<FlowId> = (0..50)
            .map(|i| n.start_flow(i, 50 + i, 1e6, i as u64))
            .collect();
        for &id in &ids[..10] {
            n.cancel_flow(id);
        }
        for &id in &ids[10..] {
            assert!((n.flow(id).unwrap().rate - 125e6).abs() < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "local transfers")]
    fn local_flow_rejected() {
        let mut n = net();
        n.start_flow(1, 1, 1e6, 0);
    }
}
