//! Property tests for the serving-plane Zipf sampler: rank
//! monotonicity, exact seed determinism, and the skew edge cases
//! (`s = 0` uniform, huge `s` degenerate). The vendored proptest
//! miniature has integer strategies only, so fractional skews are
//! mapped from tenths.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xorbas_sim::ZipfSampler;

fn draw(z: &ZipfSampler, seed: u64, count: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| z.sample_rank(&mut rng)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frequencies_decrease_in_rank_and_sum_to_one(
        (n, s_tenths) in (1usize..=512, 0u32..=40)
    ) {
        let z = ZipfSampler::new(n, f64::from(s_tenths) / 10.0);
        prop_assert_eq!(z.len(), n);
        for r in 1..z.len() {
            prop_assert!(
                z.frequency(r) <= z.frequency(r - 1) + 1e-12,
                "rank {} hotter than rank {} at s={}",
                r, r - 1, z.skew()
            );
        }
        let total: f64 = (0..z.len()).map(|r| z.frequency(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "frequencies sum to {total}");
    }

    #[test]
    fn same_seed_reproduces_the_exact_sequence(
        (n, s_tenths, seed) in (1usize..=256, 0u32..=30, any::<u64>())
    ) {
        let z = ZipfSampler::new(n, f64::from(s_tenths) / 10.0);
        let a = draw(&z, seed, 100);
        prop_assert_eq!(&a, &draw(&z, seed, 100));
        for &r in &a {
            prop_assert!(r < n, "rank {r} out of range {n}");
        }
    }

    #[test]
    fn different_seeds_diverge(
        (n, s_tenths, seed) in (8usize..=256, 0u32..=20, any::<u64>())
    ) {
        let z = ZipfSampler::new(n, f64::from(s_tenths) / 10.0);
        // 100 draws over >= 8 ranks at moderate skew: two independent
        // streams agreeing everywhere is beyond-astronomical.
        prop_assert_ne!(
            draw(&z, seed, 100),
            draw(&z, seed.wrapping_add(1), 100)
        );
    }

    #[test]
    fn zero_skew_is_exactly_uniform(n in 1usize..=300) {
        let z = ZipfSampler::new(n, 0.0);
        let want = 1.0 / n as f64;
        for r in 0..n {
            prop_assert!(
                (z.frequency(r) - want).abs() < 1e-9,
                "rank {} frequency {} != uniform {}",
                r, z.frequency(r), want
            );
        }
    }

    #[test]
    fn huge_skew_degenerates_to_rank_zero((n, seed) in (2usize..=100, any::<u64>())) {
        let z = ZipfSampler::new(n, 50.0);
        prop_assert!(z.frequency(0) > 0.999_999, "rank 0 holds all mass");
        for r in draw(&z, seed, 50) {
            prop_assert_eq!(r, 0);
        }
    }

    #[test]
    fn empirical_rank_ordering_matches_frequencies(s_tenths in 5u32..=25) {
        // A heavier head must also *sample* hotter: at s >= 0.5 over 64
        // ranks the head/last frequency ratio is at least 64^0.5 = 8,
        // so over 20k draws the head count must dwarf the coldest rank
        // even with sampling noise.
        let z = ZipfSampler::new(64, f64::from(s_tenths) / 10.0);
        let counts = draw(&z, 42, 20_000).iter().fold(vec![0usize; 64], |mut c, &r| {
            c[r] += 1;
            c
        });
        prop_assert!(
            counts[0] >= counts[63] * 2,
            "rank-0 count {} vs rank-63 count {} at s={}",
            counts[0], counts[63], z.skew()
        );
    }
}
