//! CI-gated serving-plane scenario suite.
//!
//! Pins the `serving_mode` workload scenario against the Rashmi et al.
//! Facebook-warehouse measurement ([`RASHMI_SINGLE_BLOCK_RECOVERY_FRACTION`]):
//! the overwhelming majority of recovery events a client read trips over
//! involve exactly one unavailable block in the stripe. Also freezes the
//! analytic latency ordering (degraded reads pay the fetch+decode fan-in,
//! so their p50 clears the direct p999) and bit-exact determinism of two
//! same-seed runs.
//!
//! These run in ~0.4 s each in release; CI runs the suite twice as the
//! determinism gate.

use xorbas_core::CodeSpec;
use xorbas_sim::{
    run_scale_scenario, ScaleScenario, ScenarioRun, ServePolicy,
    RASHMI_SINGLE_BLOCK_RECOVERY_FRACTION,
};

const PIN_SEEDS: [u64; 3] = [3, 7, 13];
/// Per-seed tolerance around the Rashmi et al. fraction. One week of a
/// 60-node trace yields ~1.5k recovery events per seed, so individual
/// seeds wobble a few points around the pooled estimate.
const PER_SEED_TOL: f64 = 0.06;
/// Pooled (all seeds) tolerance — triple the sample, half the wobble.
const POOLED_TOL: f64 = 0.04;
/// Serving deadline the degraded tail must clear, ms.
const DEGRADED_P999_DEADLINE_MS: f64 = 500.0;

fn serving_run(seed: u64) -> ScenarioRun {
    run_scale_scenario(&ScaleScenario::serving_mode(CodeSpec::LRC_10_6_5), seed)
}

#[test]
fn degraded_read_rate_matches_rashmi_et_al() {
    let mut pooled_single = 0u64;
    let mut pooled_recovery = 0u64;

    for seed in PIN_SEEDS {
        let run = serving_run(seed);
        let s = run.serving.expect("serving_mode attaches a workload");

        assert_eq!(s.failed_reads, 0, "seed {seed}: no client read may fail");
        assert!(
            s.reads_issued > 500_000,
            "seed {seed}: 7 days at 1 rps should issue ~604k reads, got {}",
            s.reads_issued
        );
        assert!(
            s.degraded_fraction > 0.001 && s.degraded_fraction < 0.01,
            "seed {seed}: degraded fraction {} outside the (0.1%, 1%) band",
            s.degraded_fraction
        );

        let diff = (s.single_loss_fraction - RASHMI_SINGLE_BLOCK_RECOVERY_FRACTION).abs();
        assert!(
            diff < PER_SEED_TOL,
            "seed {seed}: single-loss recovery fraction {} vs Rashmi et al. {} (|diff| {diff})",
            s.single_loss_fraction,
            RASHMI_SINGLE_BLOCK_RECOVERY_FRACTION
        );

        pooled_single += s.single_loss_recoveries;
        pooled_recovery += s.recovery_reads;
    }

    let pooled = pooled_single as f64 / pooled_recovery as f64;
    let diff = (pooled - RASHMI_SINGLE_BLOCK_RECOVERY_FRACTION).abs();
    assert!(
        diff < POOLED_TOL,
        "pooled single-loss fraction {pooled} ({pooled_single}/{pooled_recovery}) vs \
         Rashmi et al. {RASHMI_SINGLE_BLOCK_RECOVERY_FRACTION} (|diff| {diff})"
    );
}

#[test]
fn degraded_latency_tail_is_ordered_and_bounded() {
    let run = serving_run(PIN_SEEDS[0]);
    let s = run.serving.expect("serving_mode attaches a workload");

    assert!(s.direct_reads > 0 && s.degraded_light + s.degraded_heavy > 0);
    // Every degraded read fetches >= k-ish lanes where a direct read
    // fetches one block, so even the degraded *median* must clear the
    // direct *tail*.
    assert!(
        s.degraded_ms.p50 > s.direct_ms.p999,
        "degraded p50 {} must exceed direct p999 {}",
        s.degraded_ms.p50,
        s.direct_ms.p999
    );
    assert!(
        s.degraded_ms.p999 < DEGRADED_P999_DEADLINE_MS,
        "degraded p999 {} ms blows the {} ms serving deadline",
        s.degraded_ms.p999,
        DEGRADED_P999_DEADLINE_MS
    );
    // Degraded reads amplify bytes-fetched-per-byte-served; direct reads
    // dominate volume but each degraded read fetches several blocks.
    assert!(s.degraded_bytes > 0.0 && s.direct_bytes > s.degraded_bytes);
}

#[test]
fn wait_for_fixer_policy_reports_fixer_wait_tail() {
    let mut sc = ScaleScenario::serving_mode(CodeSpec::LRC_10_6_5);
    let wl = sc
        .workload
        .as_mut()
        .expect("serving_mode attaches a workload");
    wl.policy = ServePolicy::WaitForFixer;
    let run = run_scale_scenario(&sc, PIN_SEEDS[0]);
    let s = run.serving.expect("serving summary");

    assert_eq!(
        s.degraded_light + s.degraded_heavy,
        0,
        "no inline decode under WaitForFixer"
    );
    assert!(
        s.fixer_wait_reads > 0,
        "a week of failures must park some reads"
    );
    assert_eq!(s.failed_reads, 0);
    // Waiting on repair (detection delay + queue + transfer) is orders
    // of magnitude slower than an inline degraded decode.
    assert!(
        s.fixer_wait_ms.p50 > DEGRADED_P999_DEADLINE_MS,
        "fixer-wait p50 {} ms should dwarf the degraded deadline",
        s.fixer_wait_ms.p50
    );
}

/// Bitwise f64 equality: stricter than `==` and treats the NaN a
/// probe-less scenario reports for `probe_job_minutes` as equal to
/// itself.
fn assert_bits_eq(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} vs {b}");
}

/// Field-by-field equality of two runs, excluding wall-clock time.
fn assert_runs_identical(a: &ScenarioRun, b: &ScenarioRun) {
    assert_eq!(a.scheme, b.scheme);
    assert_eq!(a.failures_injected, b.failures_injected);
    assert_eq!(a.blocks_lost, b.blocks_lost);
    assert_eq!(a.blocks_repaired, b.blocks_repaired);
    assert_bits_eq(a.hdfs_bytes_read, b.hdfs_bytes_read, "hdfs_bytes_read");
    assert_bits_eq(a.network_bytes, b.network_bytes, "network_bytes");
    assert_bits_eq(
        a.blocks_read_per_lost_block,
        b.blocks_read_per_lost_block,
        "blocks_read_per_lost_block",
    );
    assert_eq!(a.data_loss_stripes, b.data_loss_stripes);
    assert_bits_eq(
        a.probe_job_minutes,
        b.probe_job_minutes,
        "probe_job_minutes",
    );
    assert_eq!(a.repair_minutes, b.repair_minutes);
    assert_eq!(a.events_processed, b.events_processed);
    let (sa, sb) = (a.serving.expect("serving"), b.serving.expect("serving"));
    assert_eq!(sa, sb, "serving summaries must be bit-identical");
}

#[test]
fn same_seed_workload_runs_are_bit_identical() {
    let a = serving_run(7);
    let b = serving_run(7);
    assert_runs_identical(&a, &b);

    // And a different seed genuinely changes the stream (guards against
    // the pin accidentally comparing constants).
    let c = serving_run(8);
    assert!(
        c.serving.expect("serving").reads_issued != a.serving.expect("serving").reads_issued
            || c.events_processed != a.events_processed,
        "seed must reach the workload RNG"
    );
}
