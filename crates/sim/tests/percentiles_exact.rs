//! Exactness tests for the nearest-rank [`Percentiles`] recorder on
//! adversarial inputs: heavy duplicates, single elements, and input
//! orderings that must not change a single output bit. The serving
//! plane's latency pins lean on these semantics, so they are frozen
//! here rather than implied by the doc comment.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use xorbas_sim::{PercentileSummary, Percentiles};

fn recorded(samples: &[f64]) -> Percentiles {
    let mut p = Percentiles::new();
    for &s in samples {
        p.record(s);
    }
    p
}

/// Reference nearest-rank quantile: 1-based rank `ceil(q * n)`.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

#[test]
fn textbook_one_to_hundred() {
    let mut p = recorded(&(1..=100).map(f64::from).collect::<Vec<_>>());
    let s = p.summary();
    assert_eq!(s.count, 100);
    assert_eq!(s.min, 1.0);
    assert_eq!(s.p50, 50.0);
    assert_eq!(s.p99, 99.0);
    assert_eq!(s.p999, 100.0);
    assert_eq!(s.max, 100.0);
    assert!((s.mean - 50.5).abs() < 1e-12);
}

#[test]
fn single_element_is_every_statistic() {
    let mut p = recorded(&[42.5]);
    assert_eq!(p.quantile(0.0), 42.5);
    assert_eq!(p.quantile(0.5), 42.5);
    assert_eq!(p.quantile(1.0), 42.5);
    let s = p.summary();
    assert_eq!(
        s,
        PercentileSummary {
            count: 1,
            mean: 42.5,
            min: 42.5,
            p50: 42.5,
            p99: 42.5,
            p999: 42.5,
            max: 42.5,
        }
    );
}

#[test]
fn duplicates_dominate_the_tail() {
    // 999 copies of 1.0 and a single 1000.0: the p999 rank is
    // ceil(0.999 * 1000) = 999, which still lands on the duplicate —
    // only the max sees the outlier.
    let mut samples = vec![1.0; 999];
    samples.push(1000.0);
    let mut p = recorded(&samples);
    let s = p.summary();
    assert_eq!(s.p50, 1.0);
    assert_eq!(s.p99, 1.0);
    assert_eq!(s.p999, 1.0);
    assert_eq!(s.max, 1000.0);

    // One more outlier sample tips rank 1000 of 1001 onto it.
    p.record(1000.0);
    assert_eq!(p.quantile(0.999), 1000.0);
}

#[test]
fn all_identical_samples_collapse() {
    let mut p = recorded(&[7.25; 321]);
    let s = p.summary();
    assert_eq!(s.count, 321);
    assert_eq!(
        (s.min, s.p50, s.p99, s.p999, s.max),
        (7.25, 7.25, 7.25, 7.25, 7.25)
    );
    assert_eq!(s.mean, 7.25);
}

#[test]
fn non_finite_samples_are_ignored() {
    let mut p = recorded(&[f64::NAN, 3.0, f64::INFINITY, 1.0, f64::NEG_INFINITY, 2.0]);
    assert_eq!(p.len(), 3);
    let s = p.summary();
    assert_eq!(s.count, 3);
    assert_eq!(s.min, 1.0);
    assert_eq!(s.max, 3.0);
    assert_eq!(s.p50, 2.0);
}

#[test]
fn empty_recorder_reports_zeroes() {
    let mut p = Percentiles::new();
    assert!(p.is_empty());
    assert_eq!(p.quantile(0.5), 0.0);
    assert_eq!(p.summary(), PercentileSummary::default());
}

#[test]
fn out_of_range_quantiles_clamp() {
    let mut p = recorded(&[10.0, 20.0, 30.0]);
    assert_eq!(p.quantile(-1.0), 10.0);
    assert_eq!(p.quantile(2.0), 30.0);
}

#[test]
fn merge_matches_recording_in_one_recorder() {
    let a_samples: Vec<f64> = (0..57).map(|i| f64::from(i) * 1.5).collect();
    let b_samples: Vec<f64> = (0..43).map(|i| 100.0 - f64::from(i)).collect();
    let mut merged = recorded(&a_samples);
    merged.merge(&recorded(&b_samples));

    let mut flat = recorded(&[a_samples, b_samples].concat());
    assert_eq!(merged.summary(), flat.summary());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shuffled_input_is_bit_identical_to_sorted(
        (len, seed) in (1usize..=400, any::<u64>())
    ) {
        // Duplicate-heavy values: i % 7 gives long runs of ties.
        let sorted: Vec<f64> = (0..len).map(|i| f64::from((i % 7) as u32)).collect();
        let mut shuffled = sorted.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(seed));

        let mut from_sorted = recorded(&sorted);
        let mut from_shuffled = recorded(&shuffled);
        prop_assert_eq!(from_sorted.summary(), from_shuffled.summary());
    }

    #[test]
    fn quantile_matches_reference_nearest_rank(
        (len, q_thousandths) in (1usize..=300, 0u32..=1000)
    ) {
        let q = f64::from(q_thousandths) / 1000.0;
        let mut values: Vec<f64> = (0..len).map(|i| f64::from((i * 37 % 101) as u32)).collect();
        let mut p = recorded(&values);
        values.sort_unstable_by(f64::total_cmp);
        prop_assert_eq!(p.quantile(q), nearest_rank(&values, q));
    }
}
