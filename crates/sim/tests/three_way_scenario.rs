//! CI-gated three-way codec comparison suite (PR 10).
//!
//! Pins the RS (10,4) / LRC (10,6,5) / piggybacked RS (10,4) table on
//! the fast-mode 60-node scenario: storage overheads, distance bounds,
//! plan-level single-data-loss costs (the headline ~30% piggyback
//! repair-byte saving at equal storage overhead), and the
//! cluster-measured repair-traffic ordering. CI runs the suite twice —
//! the in-process determinism test plus the second invocation prove the
//! whole gate reproducible within and across processes.
//!
//! The committed `BENCH_PR10.json` table is emitted by
//! `examples/three_way.rs` from the same scenario and seeds.

use xorbas_core::CodeSpec;
use xorbas_sim::{
    run_scale_scenario, single_data_loss_cost, three_way_table, CodeComparisonRow, ScaleScenario,
};

/// Same seeds as the RS-vs-LRC Monte-Carlo acceptance gate.
const SEEDS: [u64; 3] = [5, 17, 23];

fn table() -> Vec<CodeComparisonRow> {
    three_way_table(&ScaleScenario::fast_mode(CodeSpec::RS_10_4), &SEEDS).unwrap()
}

/// The headline PR-10 acceptance gate: at *equal storage overhead* and
/// *equal distance*, a single lost data block costs piggybacked RS at
/// most 0.75x the repair bytes of plain RS. The exact planner numbers:
/// 6.7 block-volumes vs 10.0 (a 33% saving), touching 11 blocks vs 10.
#[test]
fn piggyback_single_data_loss_repairs_under_three_quarters_of_rs_bytes() {
    let rs = CodeSpec::RS_10_4;
    let pb = CodeSpec::PB_10_4;
    assert_eq!(pb.storage_overhead(), rs.storage_overhead());
    assert_eq!(pb.distance_upper_bound(), rs.distance_upper_bound());

    let (rs_volume, rs_blocks) = single_data_loss_cost(rs).unwrap();
    let (pb_volume, pb_blocks) = single_data_loss_cost(pb).unwrap();
    assert_eq!((rs_volume, rs_blocks), (10.0, 10.0));
    assert!(
        (pb_volume - 6.7).abs() < 1e-12,
        "piggyback volume {pb_volume}"
    );
    assert_eq!(pb_blocks, 11.0);

    let ratio = pb_volume / rs_volume;
    assert!(
        ratio <= 0.75,
        "piggyback/RS single-data-loss byte ratio {ratio} exceeds 0.75"
    );
}

/// The cluster-measured table: repair traffic per lost block must order
/// LRC < piggybacked RS < RS. The piggyback saving shrinks from the
/// planner's 0.67x because cluster losses mix in parity lanes and
/// multi-loss stripes, both of which piggybacked RS repairs at full RS
/// volume — the honest fleet-average band is ~0.72–0.92x.
#[test]
fn cluster_repair_traffic_orders_lrc_piggyback_rs() {
    let rows = table();
    assert_eq!(rows.len(), 3);
    let [rs, lrc, pb] = &rows[..] else {
        panic!("three rows");
    };
    assert_eq!(rs.scheme, "RS (10, 4)");
    assert_eq!(lrc.scheme, "LRC (10, 6, 5)");
    assert_eq!(pb.scheme, "Piggybacked RS (10, 4)");

    // Storage: the two MDS codes are cheapest; the LRC pays 14% more
    // for its locality. Reliability: every family tolerates any four
    // losses (the MDS codes meet their Singleton bound of 5 exactly;
    // the LRC's Theorem-2 bound of 6 is not met — its distance is 5).
    assert_eq!(rs.storage_overhead, pb.storage_overhead);
    assert!(lrc.storage_overhead > rs.storage_overhead);
    assert_eq!(rs.distance_upper_bound, 5);
    assert_eq!(pb.distance_upper_bound, 5);
    assert_eq!(lrc.distance_upper_bound, 6);
    for row in &rows {
        assert_eq!(row.cluster.runs.len(), SEEDS.len());
        assert_eq!(row.cluster.data_loss_stripes.mean, 0.0, "{}", row.scheme);
        for run in &row.cluster.runs {
            assert!(run.failures_injected > 0, "a fortnight must see failures");
            assert!(run.blocks_lost > 0);
            assert_eq!(run.blocks_repaired, run.blocks_lost);
        }
    }

    let rs_reads = rs.cluster.blocks_read_per_lost_block.mean;
    let lrc_reads = lrc.cluster.blocks_read_per_lost_block.mean;
    let pb_reads = pb.cluster.blocks_read_per_lost_block.mean;
    assert!(rs_reads > 8.5, "RS reads {rs_reads}");
    assert!(lrc_reads < 6.5, "LRC reads {lrc_reads}");
    assert!(
        lrc_reads < pb_reads && pb_reads < rs_reads,
        "ordering violated: LRC {lrc_reads}, piggyback {pb_reads}, RS {rs_reads}"
    );

    let ratio = pb_reads / rs_reads;
    assert!(
        (0.72..0.92).contains(&ratio),
        "cluster piggyback/RS read ratio {ratio} outside the fleet-average band"
    );
}

/// Two same-seed piggyback runs are bit-identical — the determinism
/// pin that lets CI rerun this suite as its own reproducibility gate.
#[test]
fn piggyback_scenario_is_deterministic() {
    let sc = ScaleScenario::fast_mode(CodeSpec::PB_10_4);
    let a = run_scale_scenario(&sc, SEEDS[0]);
    let b = run_scale_scenario(&sc, SEEDS[0]);
    // Everything but wall time (and the NaN probe field — probes are
    // off in fast mode) must match bit-for-bit.
    assert_eq!(a.failures_injected, b.failures_injected);
    assert_eq!(a.blocks_lost, b.blocks_lost);
    assert_eq!(a.blocks_repaired, b.blocks_repaired);
    assert_eq!(a.hdfs_bytes_read, b.hdfs_bytes_read);
    assert_eq!(a.network_bytes, b.network_bytes);
    assert_eq!(a.blocks_read_per_lost_block, b.blocks_read_per_lost_block);
    assert_eq!(a.repair_minutes, b.repair_minutes);
    assert_eq!(a.events_processed, b.events_processed);
    assert!(a.failures_injected > 0);
}
