//! GF(2^16), for codes whose blocklength exceeds 255 or whose randomized
//! constructions need the larger field the paper's Theorem 4 calls for.

use crate::tables::impl_table_field;

impl_table_field!(
    /// An element of GF(2^16) (polynomial `x^16 + x^12 + x^3 + x + 1`).
    ///
    /// Theorem 4 requires field size `q > C(n, k + ⌈k/r⌉ - 1)` for the
    /// randomized construction to succeed with high probability; GF(2^16)
    /// gives the randomized LRC builder far more headroom than GF(2^8)
    /// while symbols still pack into two little-endian payload bytes.
    Gf65536,
    u16,
    16,
    crate::poly::PRIMITIVE_POLY_16
);

#[cfg(test)]
mod tests {
    use super::Gf65536;
    use crate::poly::{clmul_mod, PRIMITIVE_POLY_16};
    use crate::Field;
    use proptest::prelude::*;

    #[test]
    fn matches_reference_on_structured_sample() {
        // Exhaustive is 2^32 pairs; sample a structured grid instead.
        let points: Vec<u32> = (0..=16)
            .map(|i| (i * 4099) % 65536)
            .chain([1, 2, 65535])
            .collect();
        for &a in &points {
            for &b in &points {
                let expect = clmul_mod(a, b, PRIMITIVE_POLY_16, 16);
                let got = Gf65536::from_index(a) * Gf65536::from_index(b);
                assert_eq!(got.index(), expect, "{a} * {b}");
            }
        }
    }

    #[test]
    fn symbol_serialization_is_two_bytes_le() {
        let x = Gf65536::from_index(0xBEEF);
        let mut buf = [0u8; 2];
        x.write_symbol(&mut buf);
        assert_eq!(buf, [0xEF, 0xBE]);
        assert_eq!(Gf65536::read_symbol(&buf), x);
        assert_eq!(Gf65536::SYMBOL_BYTES, 2);
    }

    #[test]
    fn generator_powers_do_not_collide_early() {
        // Spot-check the generator's order is large: the first 2^12 powers
        // are distinct (a full order check would walk 65535 steps; that is
        // done implicitly by table construction).
        let mut seen = std::collections::HashSet::new();
        let mut v = Gf65536::ONE;
        for _ in 0..(1 << 12) {
            assert!(seen.insert(v));
            v *= Gf65536::generator();
        }
    }

    fn any_elem() -> impl Strategy<Value = Gf65536> {
        (0u32..65536).prop_map(Gf65536::from_index)
    }

    proptest! {
        #[test]
        fn field_axioms_hold(a in any_elem(), b in any_elem(), c in any_elem()) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a * b) * c, a * (b * c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn inverse_round_trips(a in any_elem()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a * a.inv().unwrap(), Gf65536::ONE);
        }
    }
}
