//! Polynomial reference arithmetic and the primitive-polynomial registry.
//!
//! The table-driven field implementations are verified (in tests) against
//! [`clmul_mod`], a direct shift-and-XOR carry-less multiplication with
//! modular reduction.

/// Primitive polynomial for GF(2^4): `x^4 + x + 1`.
pub const PRIMITIVE_POLY_4: u32 = 0x13;
/// Primitive polynomial for GF(2^8): `x^8 + x^4 + x^3 + x^2 + 1`.
///
/// This is the polynomial used by most storage systems (and by the
/// HDFS-RAID `ErasureCode` implementation the paper builds on).
pub const PRIMITIVE_POLY_8: u32 = 0x11D;
/// Primitive polynomial for GF(2^16): `x^16 + x^12 + x^3 + x + 1`.
pub const PRIMITIVE_POLY_16: u32 = 0x1100B;

/// Carry-less multiplication of `a` and `b` reduced modulo `poly`.
///
/// `poly` must include its leading bit (degree `bits`). This is the slow
/// reference implementation; the field types use log/exp tables instead.
pub fn clmul_mod(a: u32, b: u32, poly: u32, bits: u32) -> u32 {
    let mask = (1u32 << bits) - 1;
    let high = 1u32 << bits;
    let mut a = a & mask;
    let mut b = b & mask;
    let mut acc = 0u32;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        b >>= 1;
        a <<= 1;
        if a & high != 0 {
            a ^= poly;
        }
    }
    acc & mask
}

/// Whether `x` is a primitive element modulo `poly`, i.e. whether the
/// powers of `x` enumerate all `2^bits - 1` nonzero elements.
///
/// All polynomials in the registry satisfy this, which is what lets the
/// field tables use `α = x`.
pub fn x_is_primitive(poly: u32, bits: u32) -> bool {
    let order = (1u32 << bits) - 1;
    let mut v = 1u32;
    for step in 1..=order {
        v = clmul_mod(v, 0b10, poly, bits);
        if v == 1 {
            return step == order;
        }
    }
    false
}

/// Evaluates a polynomial with coefficients in GF(2^bits) (lowest degree
/// first) at point `x`, using Horner's rule over [`clmul_mod`].
pub fn eval_poly(coeffs: &[u32], x: u32, poly: u32, bits: u32) -> u32 {
    let mut acc = 0u32;
    for &c in coeffs.iter().rev() {
        acc = clmul_mod(acc, x, poly, bits) ^ c;
    }
    acc & ((1u32 << bits) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_polys_have_primitive_x() {
        assert!(x_is_primitive(PRIMITIVE_POLY_4, 4));
        assert!(x_is_primitive(PRIMITIVE_POLY_8, 8));
        assert!(x_is_primitive(PRIMITIVE_POLY_16, 16));
    }

    #[test]
    fn non_primitive_poly_detected() {
        // x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive: x has
        // order 5, not 15.
        assert!(!x_is_primitive(0b11111, 4));
    }

    #[test]
    fn clmul_small_cases() {
        // In GF(2^4) with x^4 + x + 1: x * x^3 = x^4 = x + 1 = 0b0011.
        assert_eq!(clmul_mod(0b0010, 0b1000, PRIMITIVE_POLY_4, 4), 0b0011);
        // 1 is the multiplicative identity.
        for a in 0..16 {
            assert_eq!(clmul_mod(a, 1, PRIMITIVE_POLY_4, 4), a);
        }
        // 0 annihilates.
        for a in 0..16 {
            assert_eq!(clmul_mod(a, 0, PRIMITIVE_POLY_4, 4), 0);
        }
    }

    #[test]
    fn clmul_commutes_gf16_exhaustive() {
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(
                    clmul_mod(a, b, PRIMITIVE_POLY_4, 4),
                    clmul_mod(b, a, PRIMITIVE_POLY_4, 4)
                );
            }
        }
    }

    #[test]
    fn eval_poly_horner_matches_manual() {
        // p(y) = 3 + 5y + y^2 over GF(2^8), at y = 7.
        let poly = PRIMITIVE_POLY_8;
        let y = 7;
        let manual = 3 ^ clmul_mod(5, y, poly, 8) ^ clmul_mod(clmul_mod(y, y, poly, 8), 1, poly, 8);
        assert_eq!(eval_poly(&[3, 5, 1], y, poly, 8), manual);
    }
}
