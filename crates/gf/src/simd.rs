//! SIMD byte-slice kernel backends and their runtime dispatch.
//!
//! GF(2^8) multiplication by a fixed coefficient `c` is a 256-entry
//! table lookup per byte. The SIMD kernels here replace that with the
//! *split-nibble* scheme (cf. Uezato, "Accelerating XOR-based Erasure
//! Coding", SC 2021): since `c·x = c·(x_hi·16) + c·x_lo`, two 16-entry
//! tables — one for each nibble — suffice, and 16-entry lookups are
//! exactly what `PSHUFB`/`VPSHUFB` compute for a whole vector of bytes
//! per instruction.
//!
//! Three backends implement the same [`KernelSuite`] contract:
//!
//! * **scalar** — portable Rust: 256-entry product-row lookups (the
//!   nibble tables expanded once per call) and a `u64`-wide XOR. The
//!   universal fallback, always available, and the reference the SIMD
//!   paths are property-tested against.
//! * **ssse3** — 128-bit `PSHUFB` kernels.
//! * **avx2** — 256-bit `VPSHUFB` kernels (the 16-entry tables broadcast
//!   to both 128-bit lanes).
//!
//! Selection happens once per process (see [`KernelBackend::active`])
//! via `is_x86_feature_detected!`, overridable with environment
//! variables for testing — the full story is documented on
//! [`crate::slice_ops`].
//!
//! # Safety model
//!
//! This is the only module in the crate that uses `unsafe` (the crate
//! root carries `#![deny(unsafe_code)]`; this module opts out locally).
//! Every `#[target_feature]` function documents its contract: it must
//! only be invoked on a CPU with that feature. The *only* route from
//! safe code to those functions is a [`KernelSuite`] obtained from
//! [`suite_for`], which hands out a SIMD suite strictly after the
//! corresponding `is_x86_feature_detected!` check has passed (and falls
//! back to the scalar suite otherwise), making the safe wrapper
//! functions stored in the suites sound.

#![allow(unsafe_code)]

/// Split-nibble multiplication tables for one coefficient of a byte-wide
/// field: `lo[x] = c·x` for `x < 16` and `hi[x] = c·(x·16)`, so that
/// `c·b = lo[b & 0xF] ^ hi[b >> 4]` for any byte `b`.
///
/// 32 bytes — cheap enough to build per kernel call (30 field
/// multiplications) and small enough to live in two vector registers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MulTables {
    pub(crate) lo: [u8; 16],
    pub(crate) hi: [u8; 16],
}

impl MulTables {
    /// Builds the split-nibble tables for `c` in any field whose symbols
    /// are single bytes (`SYMBOL_BYTES == 1`; sub-byte fields like
    /// GF(2^4) work because `from_index` truncates out-of-range bits,
    /// matching the historical 256-entry product-row semantics).
    pub(crate) fn build<F: crate::Field>(c: F) -> Self {
        debug_assert_eq!(F::SYMBOL_BYTES, 1, "split-nibble tables are byte-wide");
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for x in 0..16u32 {
            lo[x as usize] = (c * F::from_index(x)).index() as u8;
            hi[x as usize] = (c * F::from_index(x << 4)).index() as u8;
        }
        Self { lo, hi }
    }

    /// Expands to the classic 256-entry product row (`row[x] = c·x`),
    /// the representation the scalar kernels stream through.
    pub(crate) fn expand_row(&self) -> [u8; 256] {
        let mut row = [0u8; 256];
        for (x, slot) in row.iter_mut().enumerate() {
            *slot = self.lo[x & 0xF] ^ self.hi[x >> 4];
        }
        row
    }

    /// Single-byte product via the nibble tables (used by vector-kernel
    /// tails).
    #[inline(always)]
    fn mul_byte(&self, b: u8) -> u8 {
        self.lo[(b & 0xF) as usize] ^ self.hi[(b >> 4) as usize]
    }
}

/// Most sources a fused multi-source kernel call accepts; callers batch
/// longer rows. Bounds the scalar backend's on-stack expanded rows
/// (16 × 256 B = 4 KiB) and keeps SIMD table state within L1.
pub(crate) const MAX_FUSE: usize = 16;

/// Fused multi-source multiply kernel: `dst = [dst ^] Σ cᵢ·srcᵢ` with
/// prebuilt per-source tables; the `bool` is `accumulate`.
pub(crate) type MulMultiFn = for<'a> fn(&mut [u8], &[(MulTables, &'a [u8])], bool);

/// Fused multi-source XOR kernel: `dst = [dst ^] Σ srcᵢ`.
pub(crate) type XorMultiFn = for<'a> fn(&mut [u8], &[&'a [u8]], bool);

/// One implementation of the byte-payload kernel set. All function
/// pointers are safe to call with any slice arguments (equal lengths are
/// the caller's contract, checked by the public wrappers); feature-gated
/// suites are only reachable through [`suite_for`] after detection.
pub(crate) struct KernelSuite {
    pub(crate) backend: KernelBackend,
    /// `dst = c·src` (`accumulate = false`) given prebuilt tables.
    pub(crate) mul_into: fn(&mut [u8], &[u8], &MulTables),
    /// `dst ^= c·src` given prebuilt tables.
    pub(crate) mul_acc: fn(&mut [u8], &[u8], &MulTables),
    /// In-place `data = c·data` given prebuilt tables.
    pub(crate) scale: fn(&mut [u8], &MulTables),
    /// `dst ^= src`.
    pub(crate) xor_into: fn(&mut [u8], &[u8]),
    /// Fused `dst = [dst ^] Σ cᵢ·srcᵢ` over at most [`MAX_FUSE`] sources:
    /// one pass over `dst` however many sources there are. With no
    /// sources and `accumulate == false` the destination is zero-filled.
    pub(crate) mul_multi: MulMultiFn,
    /// Fused `dst = [dst ^] Σ srcᵢ` over at most [`MAX_FUSE`] sources.
    pub(crate) xor_multi: XorMultiFn,
}

/// A byte-kernel implementation selectable at runtime.
///
/// [`KernelBackend::active`] reports the process-wide choice; the
/// methods on this enum (defined in [`crate::slice_ops`]) run a specific
/// backend's kernels directly, which is how the benchmarks compare
/// scalar against dispatched code and how the equivalence tests pin
/// SIMD/scalar bit-identity in a single process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Portable Rust: product-row lookups and `u64`-wide XOR.
    Scalar,
    /// 128-bit split-nibble `PSHUFB` kernels (x86/x86_64).
    Ssse3,
    /// 256-bit split-nibble `VPSHUFB` kernels (x86/x86_64).
    Avx2,
}

impl KernelBackend {
    /// Every backend this build knows about, portable first.
    pub const ALL: [KernelBackend; 3] = [
        KernelBackend::Scalar,
        KernelBackend::Ssse3,
        KernelBackend::Avx2,
    ];

    /// The backend's lowercase name (`"scalar"`, `"ssse3"`, `"avx2"`),
    /// as accepted by the `XORBAS_KERNEL_BACKEND` override.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Ssse3 => "ssse3",
            KernelBackend::Avx2 => "avx2",
        }
    }

    /// Parses a backend name as accepted by `XORBAS_KERNEL_BACKEND`
    /// (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Whether the running CPU supports this backend.
    pub fn is_supported(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            KernelBackend::Ssse3 => std::arch::is_x86_feature_detected!("ssse3"),
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            KernelBackend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
            _ => false,
        }
    }

    /// The backends the running CPU supports, portable first.
    pub fn supported() -> impl Iterator<Item = KernelBackend> {
        Self::ALL.into_iter().filter(|b| b.is_supported())
    }

    /// The process-wide backend the module-level kernels dispatch to.
    ///
    /// Chosen once, on first use: the best supported backend
    /// (avx2 → ssse3 → scalar), unless overridden by the environment —
    /// see the [`crate::slice_ops`] module docs for the variables.
    pub fn active() -> KernelBackend {
        active_suite().backend
    }
}

/// The suite implementing `backend`, or the scalar suite when the CPU
/// lacks the feature. This fallback (rather than a panic) is what makes
/// the feature-gated suites sound: no code path hands out a SIMD suite
/// on a CPU that cannot execute it.
pub(crate) fn suite_for(backend: KernelBackend) -> &'static KernelSuite {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        match backend {
            KernelBackend::Avx2 if backend.is_supported() => return &x86::AVX2_SUITE,
            KernelBackend::Ssse3 if backend.is_supported() => return &x86::SSSE3_SUITE,
            _ => {}
        }
    }
    let _ = backend;
    &scalar::SUITE
}

/// The process-wide suite, selected once on first use.
pub(crate) fn active_suite() -> &'static KernelSuite {
    use std::sync::OnceLock;
    static ACTIVE: OnceLock<&'static KernelSuite> = OnceLock::new();
    ACTIVE.get_or_init(select_suite)
}

/// Applies the environment overrides, then picks the best supported
/// backend.
fn select_suite() -> &'static KernelSuite {
    if std::env::var("XORBAS_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0") {
        return &scalar::SUITE;
    }
    if let Ok(name) = std::env::var("XORBAS_KERNEL_BACKEND") {
        match KernelBackend::parse(&name) {
            Some(requested) => return suite_for(requested),
            None => {
                // A typo must not silently measure the wrong backend.
                eprintln!(
                    "xorbas_gf: unrecognized XORBAS_KERNEL_BACKEND {name:?} \
                     (expected scalar, ssse3, or avx2); using auto-detection"
                );
            }
        }
    }
    let best = KernelBackend::supported()
        .last()
        .unwrap_or(KernelBackend::Scalar);
    suite_for(best)
}

/// Portable fallback kernels: safe Rust throughout, auto-vectorizable
/// product-row streams, `u64`-wide XOR.
pub(crate) mod scalar {
    use super::{KernelBackend, KernelSuite, MulTables, MAX_FUSE};

    pub(crate) static SUITE: KernelSuite = KernelSuite {
        backend: KernelBackend::Scalar,
        mul_into,
        mul_acc,
        scale,
        xor_into,
        mul_multi,
        xor_multi,
    };

    fn mul_into(dst: &mut [u8], src: &[u8], t: &MulTables) {
        let row = t.expand_row();
        for (d, s) in dst.iter_mut().zip(src) {
            *d = row[*s as usize];
        }
    }

    fn mul_acc(dst: &mut [u8], src: &[u8], t: &MulTables) {
        let row = t.expand_row();
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= row[*s as usize];
        }
    }

    fn scale(data: &mut [u8], t: &MulTables) {
        let row = t.expand_row();
        for d in data.iter_mut() {
            *d = row[*d as usize];
        }
    }

    pub(super) fn xor_into(dst: &mut [u8], src: &[u8]) {
        let mut s = src.chunks_exact(8);
        let mut d = dst.chunks_exact_mut(8);
        for (dc, sc) in (&mut d).zip(&mut s) {
            let v = u64::from_le_bytes(dc.try_into().unwrap())
                ^ u64::from_le_bytes(sc.try_into().unwrap());
            dc.copy_from_slice(&v.to_le_bytes());
        }
        for (dc, sc) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *dc ^= sc;
        }
    }

    /// Destination-chunked fusion: the expanded rows live on the stack
    /// (hence [`MAX_FUSE`]) and `dst` is walked in L1-sized chunks, each
    /// chunk visited by every source before moving on — one effective
    /// pass of `dst` through memory however many sources there are.
    fn mul_multi(dst: &mut [u8], srcs: &[(MulTables, &[u8])], accumulate: bool) {
        assert!(srcs.len() <= MAX_FUSE, "fused row wider than MAX_FUSE");
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        let mut rows = [[0u8; 256]; MAX_FUSE];
        for (row, (t, _)) in rows.iter_mut().zip(srcs) {
            *row = t.expand_row();
        }
        const CHUNK: usize = 4096;
        let n = dst.len();
        let mut pos = 0;
        while pos < n {
            let end = (pos + CHUNK).min(n);
            for (j, (_, s)) in srcs.iter().enumerate() {
                let row = &rows[j];
                let chunk = &mut dst[pos..end];
                if j == 0 && !accumulate {
                    for (d, b) in chunk.iter_mut().zip(&s[pos..end]) {
                        *d = row[*b as usize];
                    }
                } else {
                    for (d, b) in chunk.iter_mut().zip(&s[pos..end]) {
                        *d ^= row[*b as usize];
                    }
                }
            }
            pos = end;
        }
    }

    fn xor_multi(dst: &mut [u8], srcs: &[&[u8]], accumulate: bool) {
        assert!(srcs.len() <= MAX_FUSE, "fused row wider than MAX_FUSE");
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        const CHUNK: usize = 4096;
        let n = dst.len();
        let mut pos = 0;
        while pos < n {
            let end = (pos + CHUNK).min(n);
            for (j, s) in srcs.iter().enumerate() {
                if j == 0 && !accumulate {
                    dst[pos..end].copy_from_slice(&s[pos..end]);
                } else {
                    xor_into(&mut dst[pos..end], &s[pos..end]);
                }
            }
            pos = end;
        }
    }
}

/// x86/x86_64 vector kernels: SSSE3 (`PSHUFB`, 128-bit) and AVX2
/// (`VPSHUFB`, 256-bit).
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    use super::{KernelBackend, KernelSuite, MulTables, MAX_FUSE};
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    pub(super) static SSSE3_SUITE: KernelSuite = KernelSuite {
        backend: KernelBackend::Ssse3,
        mul_into: |d, s, t| {
            // SAFETY: this suite is only reachable via `suite_for`, which
            // verified is_x86_feature_detected!("ssse3").
            unsafe { ssse3_mul(d, s, t, false) }
        },
        mul_acc: |d, s, t| {
            // SAFETY: as above — SSSE3 presence verified by `suite_for`.
            unsafe { ssse3_mul(d, s, t, true) }
        },
        scale: |d, t| {
            // SAFETY: as above — SSSE3 presence verified by `suite_for`.
            unsafe { ssse3_scale(d, t) }
        },
        xor_into: |d, s| {
            // SAFETY: as above — SSSE3 presence verified by `suite_for`.
            unsafe { ssse3_xor(d, s) }
        },
        mul_multi: |d, s, acc| {
            // SAFETY: as above — SSSE3 presence verified by `suite_for`.
            unsafe { ssse3_mul_multi(d, s, acc) }
        },
        xor_multi: |d, s, acc| {
            // SAFETY: as above — SSSE3 presence verified by `suite_for`.
            unsafe { ssse3_xor_multi(d, s, acc) }
        },
    };

    pub(super) static AVX2_SUITE: KernelSuite = KernelSuite {
        backend: KernelBackend::Avx2,
        mul_into: |d, s, t| {
            // SAFETY: this suite is only reachable via `suite_for`, which
            // verified is_x86_feature_detected!("avx2").
            unsafe { avx2_mul(d, s, t, false) }
        },
        mul_acc: |d, s, t| {
            // SAFETY: as above — AVX2 presence verified by `suite_for`.
            unsafe { avx2_mul(d, s, t, true) }
        },
        scale: |d, t| {
            // SAFETY: as above — AVX2 presence verified by `suite_for`.
            unsafe { avx2_scale(d, t) }
        },
        xor_into: |d, s| {
            // SAFETY: as above — AVX2 presence verified by `suite_for`.
            unsafe { avx2_xor(d, s) }
        },
        mul_multi: |d, s, acc| {
            // SAFETY: as above — AVX2 presence verified by `suite_for`.
            unsafe { avx2_mul_multi(d, s, acc) }
        },
        xor_multi: |d, s, acc| {
            // SAFETY: as above — AVX2 presence verified by `suite_for`.
            unsafe { avx2_xor_multi(d, s, acc) }
        },
    };

    /// Split-nibble product of 16 bytes: two `PSHUFB` lookups + XOR.
    ///
    /// Safe to define: it only operates on values, so the sole
    /// obligation — SSSE3 being available — is discharged by every
    /// caller already running under `#[target_feature(enable = "ssse3")]`.
    #[inline]
    #[target_feature(enable = "ssse3")]
    fn mul_vec128(v: __m128i, lo: __m128i, hi: __m128i, mask: __m128i) -> __m128i {
        let l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
        let h = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64::<4>(v), mask));
        _mm_xor_si128(l, h)
    }

    /// `dst = [dst ^] c·src` over 16-byte vectors, scalar nibble tail.
    ///
    /// # Safety
    /// Requires SSSE3. `dst` and `src` must not overlap (guaranteed by
    /// the `&mut`/`&` borrows) and have equal length (checked by the
    /// public wrappers).
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_mul(dst: &mut [u8], src: &[u8], t: &MulTables, accumulate: bool) {
        debug_assert_eq!(dst.len(), src.len());
        // SAFETY: caller guarantees SSSE3; all pointer arithmetic stays
        // within `dst`/`src` because `i + 16 <= n == len` at every load
        // and store, and `loadu`/`storeu` have no alignment requirement.
        unsafe {
            let lo = _mm_loadu_si128(t.lo.as_ptr().cast());
            let hi = _mm_loadu_si128(t.hi.as_ptr().cast());
            let mask = _mm_set1_epi8(0x0F);
            let n = dst.len();
            let mut i = 0;
            while i + 16 <= n {
                let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
                let mut r = mul_vec128(s, lo, hi, mask);
                if accumulate {
                    r = _mm_xor_si128(r, _mm_loadu_si128(dst.as_ptr().add(i).cast()));
                }
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), r);
                i += 16;
            }
            for j in i..n {
                let p = t.mul_byte(src[j]);
                dst[j] = if accumulate { dst[j] ^ p } else { p };
            }
        }
    }

    /// In-place `data = c·data`.
    ///
    /// # Safety
    /// Requires SSSE3.
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_scale(data: &mut [u8], t: &MulTables) {
        // SAFETY: caller guarantees SSSE3; bounds as in `ssse3_mul`.
        unsafe {
            let lo = _mm_loadu_si128(t.lo.as_ptr().cast());
            let hi = _mm_loadu_si128(t.hi.as_ptr().cast());
            let mask = _mm_set1_epi8(0x0F);
            let n = data.len();
            let mut i = 0;
            while i + 16 <= n {
                let v = _mm_loadu_si128(data.as_ptr().add(i).cast());
                _mm_storeu_si128(data.as_mut_ptr().add(i).cast(), mul_vec128(v, lo, hi, mask));
                i += 16;
            }
            for b in data[i..].iter_mut() {
                *b = t.mul_byte(*b);
            }
        }
    }

    /// `dst ^= src` over 16-byte vectors.
    ///
    /// # Safety
    /// Requires SSSE3 (SSE2 strictly, kept uniform with its suite).
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_xor(dst: &mut [u8], src: &[u8]) {
        debug_assert_eq!(dst.len(), src.len());
        // SAFETY: caller guarantees SSSE3; bounds as in `ssse3_mul`.
        unsafe {
            let n = dst.len();
            let mut i = 0;
            while i + 16 <= n {
                let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
                let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(d, s));
                i += 16;
            }
            for j in i..n {
                dst[j] ^= src[j];
            }
        }
    }

    /// Fused row: one load/store of each `dst` vector regardless of the
    /// number of sources; the per-source tables stay L1-resident.
    ///
    /// # Safety
    /// Requires SSSE3. At most [`MAX_FUSE`] sources, each of `dst`'s
    /// length (checked by the public wrappers).
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_mul_multi(dst: &mut [u8], srcs: &[(MulTables, &[u8])], accumulate: bool) {
        debug_assert!(srcs.len() <= MAX_FUSE);
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        // SAFETY: caller guarantees SSSE3; bounds as in `ssse3_mul`, for
        // every source (all sources share `dst`'s length).
        unsafe {
            let mask = _mm_set1_epi8(0x0F);
            let n = dst.len();
            let mut i = 0;
            while i + 16 <= n {
                let mut acc = if accumulate {
                    _mm_loadu_si128(dst.as_ptr().add(i).cast())
                } else {
                    _mm_setzero_si128()
                };
                for (t, s) in srcs {
                    let lo = _mm_loadu_si128(t.lo.as_ptr().cast());
                    let hi = _mm_loadu_si128(t.hi.as_ptr().cast());
                    let v = _mm_loadu_si128(s.as_ptr().add(i).cast());
                    acc = _mm_xor_si128(acc, mul_vec128(v, lo, hi, mask));
                }
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), acc);
                i += 16;
            }
            for j in i..n {
                let mut acc = if accumulate { dst[j] } else { 0 };
                for (t, s) in srcs {
                    acc ^= t.mul_byte(s[j]);
                }
                dst[j] = acc;
            }
        }
    }

    /// Fused XOR row (all coefficients 1): one `dst` pass.
    ///
    /// # Safety
    /// Requires SSSE3. At most [`MAX_FUSE`] sources of `dst`'s length.
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_xor_multi(dst: &mut [u8], srcs: &[&[u8]], accumulate: bool) {
        debug_assert!(srcs.len() <= MAX_FUSE);
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        // SAFETY: caller guarantees SSSE3; bounds as in `ssse3_mul`.
        unsafe {
            let n = dst.len();
            let mut i = 0;
            while i + 16 <= n {
                let mut acc = if accumulate {
                    _mm_loadu_si128(dst.as_ptr().add(i).cast())
                } else {
                    _mm_setzero_si128()
                };
                for s in srcs {
                    acc = _mm_xor_si128(acc, _mm_loadu_si128(s.as_ptr().add(i).cast()));
                }
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), acc);
                i += 16;
            }
            for j in i..n {
                let mut acc = if accumulate { dst[j] } else { 0 };
                for s in srcs {
                    acc ^= s[j];
                }
                dst[j] = acc;
            }
        }
    }

    /// Split-nibble product of 32 bytes via `VPSHUFB` (which looks up
    /// within each 128-bit lane — hence the tables are broadcast to both
    /// lanes).
    ///
    /// Safe to define: it only operates on values, so the sole
    /// obligation — AVX2 being available — is discharged by every caller
    /// already running under `#[target_feature(enable = "avx2")]`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn mul_vec256(v: __m256i, lo: __m256i, hi: __m256i, mask: __m256i) -> __m256i {
        let l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
        let h = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64::<4>(v), mask));
        _mm256_xor_si256(l, h)
    }

    /// Broadcasts a 16-byte nibble table to both 128-bit lanes.
    ///
    /// # Safety
    /// Requires AVX2. `table` must point to 16 readable bytes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn broadcast_table(table: &[u8; 16]) -> __m256i {
        // SAFETY: caller guarantees AVX2 and 16 readable bytes.
        unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(table.as_ptr().cast())) }
    }

    /// `dst = [dst ^] c·src` over 32-byte vectors, scalar nibble tail.
    ///
    /// # Safety
    /// Requires AVX2. Equal `dst`/`src` lengths (checked by wrappers).
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_mul(dst: &mut [u8], src: &[u8], t: &MulTables, accumulate: bool) {
        debug_assert_eq!(dst.len(), src.len());
        // SAFETY: caller guarantees AVX2; all pointer arithmetic stays
        // within `dst`/`src` because `i + 32 <= n == len` at every load
        // and store, and `loadu`/`storeu` have no alignment requirement.
        unsafe {
            let lo = broadcast_table(&t.lo);
            let hi = broadcast_table(&t.hi);
            let mask = _mm256_set1_epi8(0x0F);
            let n = dst.len();
            let mut i = 0;
            while i + 32 <= n {
                let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
                let mut r = mul_vec256(s, lo, hi, mask);
                if accumulate {
                    r = _mm256_xor_si256(r, _mm256_loadu_si256(dst.as_ptr().add(i).cast()));
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), r);
                i += 32;
            }
            for j in i..n {
                let p = t.mul_byte(src[j]);
                dst[j] = if accumulate { dst[j] ^ p } else { p };
            }
        }
    }

    /// In-place `data = c·data`.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_scale(data: &mut [u8], t: &MulTables) {
        // SAFETY: caller guarantees AVX2; bounds as in `avx2_mul`.
        unsafe {
            let lo = broadcast_table(&t.lo);
            let hi = broadcast_table(&t.hi);
            let mask = _mm256_set1_epi8(0x0F);
            let n = data.len();
            let mut i = 0;
            while i + 32 <= n {
                let v = _mm256_loadu_si256(data.as_ptr().add(i).cast());
                _mm256_storeu_si256(data.as_mut_ptr().add(i).cast(), mul_vec256(v, lo, hi, mask));
                i += 32;
            }
            for b in data[i..].iter_mut() {
                *b = t.mul_byte(*b);
            }
        }
    }

    /// `dst ^= src` over 32-byte vectors.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_xor(dst: &mut [u8], src: &[u8]) {
        debug_assert_eq!(dst.len(), src.len());
        // SAFETY: caller guarantees AVX2; bounds as in `avx2_mul`.
        unsafe {
            let n = dst.len();
            let mut i = 0;
            while i + 32 <= n {
                let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
                let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d, s));
                i += 32;
            }
            for j in i..n {
                dst[j] ^= src[j];
            }
        }
    }

    /// Fused row over 32-byte vectors: one load/store of each `dst`
    /// vector regardless of the number of sources.
    ///
    /// # Safety
    /// Requires AVX2. At most [`MAX_FUSE`] sources of `dst`'s length.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_mul_multi(dst: &mut [u8], srcs: &[(MulTables, &[u8])], accumulate: bool) {
        debug_assert!(srcs.len() <= MAX_FUSE);
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        // SAFETY: caller guarantees AVX2; bounds as in `avx2_mul`, for
        // every source (all sources share `dst`'s length).
        unsafe {
            let mask = _mm256_set1_epi8(0x0F);
            let n = dst.len();
            let mut i = 0;
            while i + 32 <= n {
                let mut acc = if accumulate {
                    _mm256_loadu_si256(dst.as_ptr().add(i).cast())
                } else {
                    _mm256_setzero_si256()
                };
                for (t, s) in srcs {
                    let lo = broadcast_table(&t.lo);
                    let hi = broadcast_table(&t.hi);
                    let v = _mm256_loadu_si256(s.as_ptr().add(i).cast());
                    acc = _mm256_xor_si256(acc, mul_vec256(v, lo, hi, mask));
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), acc);
                i += 32;
            }
            for j in i..n {
                let mut acc = if accumulate { dst[j] } else { 0 };
                for (t, s) in srcs {
                    acc ^= t.mul_byte(s[j]);
                }
                dst[j] = acc;
            }
        }
    }

    /// Fused XOR row over 32-byte vectors.
    ///
    /// # Safety
    /// Requires AVX2. At most [`MAX_FUSE`] sources of `dst`'s length.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_xor_multi(dst: &mut [u8], srcs: &[&[u8]], accumulate: bool) {
        debug_assert!(srcs.len() <= MAX_FUSE);
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        // SAFETY: caller guarantees AVX2; bounds as in `avx2_mul`.
        unsafe {
            let n = dst.len();
            let mut i = 0;
            while i + 32 <= n {
                let mut acc = if accumulate {
                    _mm256_loadu_si256(dst.as_ptr().add(i).cast())
                } else {
                    _mm256_setzero_si256()
                };
                for s in srcs {
                    acc = _mm256_xor_si256(acc, _mm256_loadu_si256(s.as_ptr().add(i).cast()));
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), acc);
                i += 32;
            }
            for j in i..n {
                let mut acc = if accumulate { dst[j] } else { 0 };
                for s in srcs {
                    acc ^= s[j];
                }
                dst[j] = acc;
            }
        }
    }
}
