//! SIMD byte-slice kernel backends and their runtime dispatch.
//!
//! GF(2^8) multiplication by a fixed coefficient `c` is a 256-entry
//! table lookup per byte. The SIMD kernels here replace that with the
//! *split-nibble* scheme (cf. Uezato, "Accelerating XOR-based Erasure
//! Coding", SC 2021): since `c·x = c·(x_hi·16) + c·x_lo`, two 16-entry
//! tables — one for each nibble — suffice, and 16-entry lookups are
//! exactly what `PSHUFB`/`VPSHUFB` compute for a whole vector of bytes
//! per instruction.
//!
//! Three backends implement the same [`KernelSuite`] contract:
//!
//! * **scalar** — portable Rust: 256-entry product-row lookups (the
//!   nibble tables expanded once per call) and a `u64`-wide XOR. The
//!   universal fallback, always available, and the reference the SIMD
//!   paths are property-tested against.
//! * **ssse3** — 128-bit `PSHUFB` kernels.
//! * **avx2** — 256-bit `VPSHUFB` kernels (the 16-entry tables broadcast
//!   to both 128-bit lanes).
//!
//! Selection happens once per process (see [`KernelBackend::active`])
//! via `is_x86_feature_detected!`, overridable with environment
//! variables for testing — the full story is documented on
//! [`crate::slice_ops`].
//!
//! # Safety model
//!
//! This is the only module in the crate that uses `unsafe` (the crate
//! root carries `#![deny(unsafe_code)]`; this module opts out locally).
//! Every `#[target_feature]` function documents its contract: it must
//! only be invoked on a CPU with that feature. The *only* route from
//! safe code to those functions is a [`KernelSuite`] obtained from
//! [`suite_for`], which hands out a SIMD suite strictly after the
//! corresponding `is_x86_feature_detected!` check has passed (and falls
//! back to the scalar suite otherwise), making the safe wrapper
//! functions stored in the suites sound.

#![allow(unsafe_code)]
// Dispatch and table-construction code must justify every index; the
// kernel scopes below carry audited allows (nibble-masked lookups into
// fixed 16-entry tables, flush-bounded batch arrays).
#![warn(clippy::indexing_slicing)]

/// Split-nibble multiplication tables for one coefficient of a byte-wide
/// field: `lo[x] = c·x` for `x < 16` and `hi[x] = c·(x·16)`, so that
/// `c·b = lo[b & 0xF] ^ hi[b >> 4]` for any byte `b`.
///
/// 32 bytes — cheap enough to build per kernel call (30 field
/// multiplications) and small enough to live in two vector registers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MulTables {
    pub(crate) lo: [u8; 16],
    pub(crate) hi: [u8; 16],
}

// Indices are 4-bit nibbles (`& 0xF`, `>> 4`) into the 16-entry tables.
#[allow(clippy::indexing_slicing)]
impl MulTables {
    /// Builds the split-nibble tables for `c` in any field whose symbols
    /// are single bytes (`SYMBOL_BYTES == 1`; sub-byte fields like
    /// GF(2^4) work because `from_index` truncates out-of-range bits,
    /// matching the historical 256-entry product-row semantics).
    pub(crate) fn build<F: crate::Field>(c: F) -> Self {
        debug_assert_eq!(F::SYMBOL_BYTES, 1, "split-nibble tables are byte-wide");
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for x in 0..16u32 {
            lo[x as usize] = (c * F::from_index(x)).index() as u8;
            hi[x as usize] = (c * F::from_index(x << 4)).index() as u8;
        }
        Self { lo, hi }
    }

    /// Expands to the classic 256-entry product row (`row[x] = c·x`),
    /// the representation the scalar kernels stream through.
    pub(crate) fn expand_row(&self) -> [u8; 256] {
        let mut row = [0u8; 256];
        for (x, slot) in row.iter_mut().enumerate() {
            *slot = self.lo[x & 0xF] ^ self.hi[x >> 4];
        }
        row
    }

    /// Single-byte product via the nibble tables (used by vector-kernel
    /// tails).
    #[inline(always)]
    fn mul_byte(&self, b: u8) -> u8 {
        self.lo[(b & 0xF) as usize] ^ self.hi[(b >> 4) as usize]
    }
}

/// Split-nibble multiplication tables for one GF(2^16) coefficient.
///
/// A two-byte little-endian symbol `s` decomposes into four nibbles
/// `s = n₀ | n₁·16 | n₂·256 | n₃·4096`, so
/// `c·s = c·n₀ + c·(n₁·16) + c·(n₂·256) + c·(n₃·4096)` — four 16-entry
/// lookups of 16-bit products. Storing each product table as separate
/// low/high output-byte halves (`lo[j]` / `hi[j]`) makes every lookup a
/// `PSHUFB`: eight tables, eight shuffles per vector of symbols (the
/// natural extension of the byte-wide split-nibble scheme; cf. Uezato,
/// SC 2021, and gf-complete's SPLIT w=16).
///
/// 128 bytes — cheap to build per kernel call (64 field multiplications)
/// and small enough for all eight tables to live in vector registers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Nibble16Tables {
    /// `lo[j][x]` = low byte of `c · (x << 4j)`.
    pub(crate) lo: [[u8; 16]; 4],
    /// `hi[j][x]` = high byte of `c · (x << 4j)`.
    pub(crate) hi: [[u8; 16]; 4],
}

// Indices are 4-bit nibbles into the 16-entry tables and byte values
// into the 256-entry expanded rows.
#[allow(clippy::indexing_slicing)]
impl Nibble16Tables {
    /// Builds the four split product tables for `c` in any field whose
    /// symbols are two little-endian bytes (`SYMBOL_BYTES == 2`).
    pub(crate) fn build<F: crate::Field>(c: F) -> Self {
        debug_assert_eq!(F::SYMBOL_BYTES, 2, "nibble16 tables are two-byte-wide");
        let mut t = Self {
            lo: [[0; 16]; 4],
            hi: [[0; 16]; 4],
        };
        for j in 0..4 {
            for x in 0..16u32 {
                let p = (c * F::from_index(x << (4 * j))).index() as u16;
                t.lo[j][x as usize] = p as u8;
                t.hi[j][x as usize] = (p >> 8) as u8;
            }
        }
        t
    }

    /// Expands to the split low/high *input-byte* `u16` tables the scalar
    /// kernels stream through: `lo_row[b] = c·b`, `hi_row[b] = c·(b·256)`
    /// for every input byte `b`, so a symbol multiplies in two reads.
    pub(crate) fn expand_rows(&self) -> Wide16Rows {
        let mut rows = Wide16Rows {
            lo: [0; 256],
            hi: [0; 256],
        };
        for b in 0..256usize {
            let (n0, n1) = (b & 0xF, b >> 4);
            rows.lo[b] = u16::from_le_bytes([
                self.lo[0][n0] ^ self.lo[1][n1],
                self.hi[0][n0] ^ self.hi[1][n1],
            ]);
            rows.hi[b] = u16::from_le_bytes([
                self.lo[2][n0] ^ self.lo[3][n1],
                self.hi[2][n0] ^ self.hi[3][n1],
            ]);
        }
        rows
    }

    /// Single-symbol product via the nibble tables (vector-kernel tails).
    #[inline(always)]
    fn mul_symbol(&self, s: u16) -> u16 {
        let n = [
            (s & 0xF) as usize,
            ((s >> 4) & 0xF) as usize,
            ((s >> 8) & 0xF) as usize,
            ((s >> 12) & 0xF) as usize,
        ];
        let mut lo = 0u8;
        let mut hi = 0u8;
        for ((lo_t, hi_t), &nj) in self.lo.iter().zip(&self.hi).zip(&n) {
            lo ^= lo_t[nj];
            hi ^= hi_t[nj];
        }
        u16::from_le_bytes([lo, hi])
    }
}

/// Split low/high input-byte product tables for one GF(2^16)
/// coefficient — the scalar representation (`lo[b] = c·b`,
/// `hi[b] = c·(b·256)`; a little-endian symbol `b₀ | b₁·256` multiplies
/// as `lo[b₀] ^ hi[b₁]`). Expanded from [`Nibble16Tables`] per call.
#[derive(Clone, Copy)]
pub(crate) struct Wide16Rows {
    pub(crate) lo: [u16; 256],
    pub(crate) hi: [u16; 256],
}

/// Most sources a fused multi-source kernel call accepts; callers batch
/// longer rows. Bounds the scalar backend's on-stack expanded rows
/// (16 × 256 B = 4 KiB) and keeps SIMD table state within L1.
pub(crate) const MAX_FUSE: usize = 16;

/// How many general (non-unit) sources a GF(2^16) fused batch carries:
/// bounds the scalar backend's expanded split rows (8 × 1 KiB on the
/// stack) and the SIMD backends' live table state (8 × 128 B).
pub(crate) const WIDE16_FUSE: usize = 8;

/// Fused multi-source multiply kernel: `dst = [dst ^] Σ cᵢ·srcᵢ` with
/// prebuilt per-source tables; the `bool` is `accumulate`.
pub(crate) type MulMultiFn = for<'a> fn(&mut [u8], &[(MulTables, &'a [u8])], bool);

/// Fused multi-source XOR kernel: `dst = [dst ^] Σ srcᵢ`.
pub(crate) type XorMultiFn = for<'a> fn(&mut [u8], &[&'a [u8]], bool);

/// Fused multi-source GF(2^16) multiply kernel over two-byte symbols;
/// the `bool` is `accumulate`. At most [`WIDE16_FUSE`] sources.
pub(crate) type Mul16MultiFn = for<'a> fn(&mut [u8], &[(Nibble16Tables, &'a [u8])], bool);

/// One implementation of the byte-payload kernel set. All function
/// pointers are safe to call with any slice arguments (equal lengths are
/// the caller's contract, checked by the public wrappers); feature-gated
/// suites are only reachable through [`suite_for`] after detection.
pub(crate) struct KernelSuite {
    pub(crate) backend: KernelBackend,
    /// `dst = c·src` (`accumulate = false`) given prebuilt tables.
    pub(crate) mul_into: fn(&mut [u8], &[u8], &MulTables),
    /// `dst ^= c·src` given prebuilt tables.
    pub(crate) mul_acc: fn(&mut [u8], &[u8], &MulTables),
    /// In-place `data = c·data` given prebuilt tables.
    pub(crate) scale: fn(&mut [u8], &MulTables),
    /// `dst ^= src`.
    pub(crate) xor_into: fn(&mut [u8], &[u8]),
    /// Fused `dst = [dst ^] Σ cᵢ·srcᵢ` over at most [`MAX_FUSE`] sources:
    /// one pass over `dst` however many sources there are. With no
    /// sources and `accumulate == false` the destination is zero-filled.
    pub(crate) mul_multi: MulMultiFn,
    /// Fused `dst = [dst ^] Σ srcᵢ` over at most [`MAX_FUSE`] sources.
    pub(crate) xor_multi: XorMultiFn,
    /// GF(2^16) `dst = c·src` over two-byte little-endian symbols
    /// (`dst.len()` must be even, shared with `src`).
    pub(crate) mul16_into: fn(&mut [u8], &[u8], &Nibble16Tables),
    /// GF(2^16) `dst ^= c·src`.
    pub(crate) mul16_acc: fn(&mut [u8], &[u8], &Nibble16Tables),
    /// GF(2^16) in-place `data = c·data`.
    pub(crate) scale16: fn(&mut [u8], &Nibble16Tables),
    /// GF(2^16) fused `dst = [dst ^] Σ cᵢ·srcᵢ` over at most
    /// [`WIDE16_FUSE`] sources: one pass over `dst`. With no sources and
    /// `accumulate == false` the destination is zero-filled.
    pub(crate) mul16_multi: Mul16MultiFn,
}

/// A byte-kernel implementation selectable at runtime.
///
/// [`KernelBackend::active`] reports the process-wide choice; the
/// methods on this enum (defined in [`crate::slice_ops`]) run a specific
/// backend's kernels directly, which is how the benchmarks compare
/// scalar against dispatched code and how the equivalence tests pin
/// SIMD/scalar bit-identity in a single process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Portable Rust: product-row lookups and `u64`-wide XOR.
    Scalar,
    /// 128-bit split-nibble `PSHUFB` kernels (x86/x86_64).
    Ssse3,
    /// 256-bit split-nibble `VPSHUFB` kernels (x86/x86_64).
    Avx2,
}

impl KernelBackend {
    /// Every backend this build knows about, portable first.
    pub const ALL: [KernelBackend; 3] = [
        KernelBackend::Scalar,
        KernelBackend::Ssse3,
        KernelBackend::Avx2,
    ];

    /// The backend's lowercase name (`"scalar"`, `"ssse3"`, `"avx2"`),
    /// as accepted by the `XORBAS_KERNEL_BACKEND` override.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Ssse3 => "ssse3",
            KernelBackend::Avx2 => "avx2",
        }
    }

    /// Parses a backend name as accepted by `XORBAS_KERNEL_BACKEND`
    /// (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Whether the running CPU supports this backend.
    pub fn is_supported(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            KernelBackend::Ssse3 => std::arch::is_x86_feature_detected!("ssse3"),
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            KernelBackend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
            _ => false,
        }
    }

    /// The backends the running CPU supports, portable first.
    pub fn supported() -> impl Iterator<Item = KernelBackend> {
        Self::ALL.into_iter().filter(|b| b.is_supported())
    }

    /// The process-wide backend the module-level kernels dispatch to.
    ///
    /// Chosen once, on first use: the best supported backend
    /// (avx2 → ssse3 → scalar), unless overridden by the environment —
    /// see the [`crate::slice_ops`] module docs for the variables.
    pub fn active() -> KernelBackend {
        active_suite().backend
    }
}

/// The suite implementing `backend`, or the scalar suite when the CPU
/// lacks the feature. This fallback (rather than a panic) is what makes
/// the feature-gated suites sound: no code path hands out a SIMD suite
/// on a CPU that cannot execute it.
pub(crate) fn suite_for(backend: KernelBackend) -> &'static KernelSuite {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        match backend {
            KernelBackend::Avx2 if backend.is_supported() => return &x86::AVX2_SUITE,
            KernelBackend::Ssse3 if backend.is_supported() => return &x86::SSSE3_SUITE,
            _ => {}
        }
    }
    let _ = backend;
    &scalar::SUITE
}

/// The process-wide suite, selected once on first use.
pub(crate) fn active_suite() -> &'static KernelSuite {
    use std::sync::OnceLock;
    static ACTIVE: OnceLock<&'static KernelSuite> = OnceLock::new();
    ACTIVE.get_or_init(select_suite)
}

/// Applies the environment overrides, then picks the best supported
/// backend.
fn select_suite() -> &'static KernelSuite {
    if std::env::var("XORBAS_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0") {
        return &scalar::SUITE;
    }
    if let Ok(name) = std::env::var("XORBAS_KERNEL_BACKEND") {
        match KernelBackend::parse(&name) {
            Some(requested) => return suite_for(requested),
            None => {
                // A typo must not silently measure the wrong backend.
                eprintln!(
                    "xorbas_gf: unrecognized XORBAS_KERNEL_BACKEND {name:?} \
                     (expected scalar, ssse3, or avx2); using auto-detection"
                );
            }
        }
    }
    let best = KernelBackend::supported()
        .last()
        .unwrap_or(KernelBackend::Scalar);
    suite_for(best)
}

/// Portable fallback kernels: safe Rust throughout, auto-vectorizable
/// product-row streams, `u64`-wide XOR.
// xlint::hot-path(scalar-kernels)
// Kernel indexing is length-checked up front: `chunks_exact` bodies,
// remainder tails indexed below the asserted common length, and
// nibble-masked table lookups.
#[allow(clippy::indexing_slicing)]
pub(crate) mod scalar {
    use super::WIDE16_FUSE;
    use super::{KernelBackend, KernelSuite, MulTables, Nibble16Tables, Wide16Rows, MAX_FUSE};

    pub(crate) static SUITE: KernelSuite = KernelSuite {
        backend: KernelBackend::Scalar,
        mul_into,
        mul_acc,
        scale,
        xor_into,
        mul_multi,
        xor_multi,
        mul16_into,
        mul16_acc,
        scale16,
        mul16_multi,
    };

    fn mul_into(dst: &mut [u8], src: &[u8], t: &MulTables) {
        let row = t.expand_row();
        for (d, s) in dst.iter_mut().zip(src) {
            *d = row[*s as usize];
        }
    }

    fn mul_acc(dst: &mut [u8], src: &[u8], t: &MulTables) {
        let row = t.expand_row();
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= row[*s as usize];
        }
    }

    fn scale(data: &mut [u8], t: &MulTables) {
        let row = t.expand_row();
        for d in data.iter_mut() {
            *d = row[*d as usize];
        }
    }

    /// Little-endian `u64` load from an 8-byte chunk (as produced by
    /// `chunks_exact(8)`).
    #[inline(always)]
    fn load_u64(b: &[u8]) -> u64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        u64::from_le_bytes(a)
    }

    pub(super) fn xor_into(dst: &mut [u8], src: &[u8]) {
        let mut s = src.chunks_exact(8);
        let mut d = dst.chunks_exact_mut(8);
        for (dc, sc) in (&mut d).zip(&mut s) {
            let v = load_u64(dc) ^ load_u64(sc);
            dc.copy_from_slice(&v.to_le_bytes());
        }
        for (dc, sc) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *dc ^= sc;
        }
    }

    /// Destination-chunked fusion: the expanded rows live on the stack
    /// (hence [`MAX_FUSE`]) and `dst` is walked in L1-sized chunks, each
    /// chunk visited by every source before moving on — one effective
    /// pass of `dst` through memory however many sources there are.
    fn mul_multi(dst: &mut [u8], srcs: &[(MulTables, &[u8])], accumulate: bool) {
        assert!(srcs.len() <= MAX_FUSE, "fused row wider than MAX_FUSE");
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        let mut rows = [[0u8; 256]; MAX_FUSE];
        for (row, (t, _)) in rows.iter_mut().zip(srcs) {
            *row = t.expand_row();
        }
        const CHUNK: usize = 4096;
        let n = dst.len();
        let mut pos = 0;
        while pos < n {
            let end = (pos + CHUNK).min(n);
            for (j, (_, s)) in srcs.iter().enumerate() {
                let row = &rows[j];
                let chunk = &mut dst[pos..end];
                if j == 0 && !accumulate {
                    for (d, b) in chunk.iter_mut().zip(&s[pos..end]) {
                        *d = row[*b as usize];
                    }
                } else {
                    for (d, b) in chunk.iter_mut().zip(&s[pos..end]) {
                        *d ^= row[*b as usize];
                    }
                }
            }
            pos = end;
        }
    }

    fn xor_multi(dst: &mut [u8], srcs: &[&[u8]], accumulate: bool) {
        assert!(srcs.len() <= MAX_FUSE, "fused row wider than MAX_FUSE");
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        const CHUNK: usize = 4096;
        let n = dst.len();
        let mut pos = 0;
        while pos < n {
            let end = (pos + CHUNK).min(n);
            for (j, s) in srcs.iter().enumerate() {
                if j == 0 && !accumulate {
                    dst[pos..end].copy_from_slice(&s[pos..end]);
                } else {
                    xor_into(&mut dst[pos..end], &s[pos..end]);
                }
            }
            pos = end;
        }
    }

    /// `dst = [dst ^] c·src` over little-endian 16-bit symbols via the
    /// expanded split input-byte rows — two table reads per symbol.
    pub(super) fn wide16_mul_rows(dst: &mut [u8], src: &[u8], r: &Wide16Rows, accumulate: bool) {
        debug_assert_eq!(dst.len() % 2, 0);
        for (dc, sc) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
            let mut p = r.lo[sc[0] as usize] ^ r.hi[sc[1] as usize];
            if accumulate {
                p ^= u16::from_le_bytes([dc[0], dc[1]]);
            }
            dc.copy_from_slice(&p.to_le_bytes());
        }
    }

    fn mul16_into(dst: &mut [u8], src: &[u8], t: &Nibble16Tables) {
        wide16_mul_rows(dst, src, &t.expand_rows(), false);
    }

    fn mul16_acc(dst: &mut [u8], src: &[u8], t: &Nibble16Tables) {
        wide16_mul_rows(dst, src, &t.expand_rows(), true);
    }

    fn scale16(data: &mut [u8], t: &Nibble16Tables) {
        let r = t.expand_rows();
        debug_assert_eq!(data.len() % 2, 0);
        for dc in data.chunks_exact_mut(2) {
            let p = r.lo[dc[0] as usize] ^ r.hi[dc[1] as usize];
            dc.copy_from_slice(&p.to_le_bytes());
        }
    }

    /// GF(2^16) fused row: the expanded split rows live on the stack
    /// (hence [`WIDE16_FUSE`]) and `dst` is walked in L1-sized chunks,
    /// each chunk visited by every source before the walk moves on.
    fn mul16_multi(dst: &mut [u8], srcs: &[(Nibble16Tables, &[u8])], accumulate: bool) {
        assert!(
            srcs.len() <= WIDE16_FUSE,
            "fused row wider than WIDE16_FUSE"
        );
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        const EMPTY: Wide16Rows = Wide16Rows {
            lo: [0; 256],
            hi: [0; 256],
        };
        let mut rows = [EMPTY; WIDE16_FUSE];
        for (row, (t, _)) in rows.iter_mut().zip(srcs) {
            *row = t.expand_rows();
        }
        const CHUNK: usize = 4096; // multiple of the 2-byte symbol width
        let n = dst.len();
        let mut pos = 0;
        while pos < n {
            let end = (pos + CHUNK).min(n);
            for (j, (_, s)) in srcs.iter().enumerate() {
                wide16_mul_rows(
                    &mut dst[pos..end],
                    &s[pos..end],
                    &rows[j],
                    accumulate || j > 0,
                );
            }
            pos = end;
        }
    }
}

/// x86/x86_64 vector kernels: SSSE3 (`PSHUFB`, 128-bit) and AVX2
/// (`VPSHUFB`, 256-bit).
// xlint::hot-path(x86-kernels)
// Vector kernels slice at multiples of the vector width computed from
// `len()` and index scalar tails below the asserted common length.
#[allow(clippy::indexing_slicing)]
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    use super::{KernelBackend, KernelSuite, MulTables, Nibble16Tables, MAX_FUSE, WIDE16_FUSE};
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    pub(super) static SSSE3_SUITE: KernelSuite = KernelSuite {
        backend: KernelBackend::Ssse3,
        mul_into: |d, s, t| {
            // SAFETY: this suite is only reachable via `suite_for`, which
            // verified is_x86_feature_detected!("ssse3").
            unsafe { ssse3_mul(d, s, t, false) }
        },
        mul_acc: |d, s, t| {
            // SAFETY: as above — SSSE3 presence verified by `suite_for`.
            unsafe { ssse3_mul(d, s, t, true) }
        },
        scale: |d, t| {
            // SAFETY: as above — SSSE3 presence verified by `suite_for`.
            unsafe { ssse3_scale(d, t) }
        },
        xor_into: |d, s| {
            // SAFETY: as above — SSSE3 presence verified by `suite_for`.
            unsafe { ssse3_xor(d, s) }
        },
        mul_multi: |d, s, acc| {
            // SAFETY: as above — SSSE3 presence verified by `suite_for`.
            unsafe { ssse3_mul_multi(d, s, acc) }
        },
        xor_multi: |d, s, acc| {
            // SAFETY: as above — SSSE3 presence verified by `suite_for`.
            unsafe { ssse3_xor_multi(d, s, acc) }
        },
        mul16_into: |d, s, t| {
            // SAFETY: as above — SSSE3 presence verified by `suite_for`.
            unsafe { ssse3_mul16(d, s, t, false) }
        },
        mul16_acc: |d, s, t| {
            // SAFETY: as above — SSSE3 presence verified by `suite_for`.
            unsafe { ssse3_mul16(d, s, t, true) }
        },
        scale16: |d, t| {
            // SAFETY: as above — SSSE3 presence verified by `suite_for`.
            unsafe { ssse3_scale16(d, t) }
        },
        mul16_multi: |d, s, acc| {
            // SAFETY: as above — SSSE3 presence verified by `suite_for`.
            unsafe { ssse3_mul16_multi(d, s, acc) }
        },
    };

    pub(super) static AVX2_SUITE: KernelSuite = KernelSuite {
        backend: KernelBackend::Avx2,
        mul_into: |d, s, t| {
            // SAFETY: this suite is only reachable via `suite_for`, which
            // verified is_x86_feature_detected!("avx2").
            unsafe { avx2_mul(d, s, t, false) }
        },
        mul_acc: |d, s, t| {
            // SAFETY: as above — AVX2 presence verified by `suite_for`.
            unsafe { avx2_mul(d, s, t, true) }
        },
        scale: |d, t| {
            // SAFETY: as above — AVX2 presence verified by `suite_for`.
            unsafe { avx2_scale(d, t) }
        },
        xor_into: |d, s| {
            // SAFETY: as above — AVX2 presence verified by `suite_for`.
            unsafe { avx2_xor(d, s) }
        },
        mul_multi: |d, s, acc| {
            // SAFETY: as above — AVX2 presence verified by `suite_for`.
            unsafe { avx2_mul_multi(d, s, acc) }
        },
        xor_multi: |d, s, acc| {
            // SAFETY: as above — AVX2 presence verified by `suite_for`.
            unsafe { avx2_xor_multi(d, s, acc) }
        },
        mul16_into: |d, s, t| {
            // SAFETY: as above — AVX2 presence verified by `suite_for`.
            unsafe { avx2_mul16(d, s, t, false) }
        },
        mul16_acc: |d, s, t| {
            // SAFETY: as above — AVX2 presence verified by `suite_for`.
            unsafe { avx2_mul16(d, s, t, true) }
        },
        scale16: |d, t| {
            // SAFETY: as above — AVX2 presence verified by `suite_for`.
            unsafe { avx2_scale16(d, t) }
        },
        mul16_multi: |d, s, acc| {
            // SAFETY: as above — AVX2 presence verified by `suite_for`.
            unsafe { avx2_mul16_multi(d, s, acc) }
        },
    };

    /// Split-nibble product of 16 bytes: two `PSHUFB` lookups + XOR.
    ///
    /// Safe to define: it only operates on values, so the sole
    /// obligation — SSSE3 being available — is discharged by every
    /// caller already running under `#[target_feature(enable = "ssse3")]`.
    #[inline]
    #[target_feature(enable = "ssse3")]
    fn mul_vec128(v: __m128i, lo: __m128i, hi: __m128i, mask: __m128i) -> __m128i {
        let l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
        let h = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64::<4>(v), mask));
        _mm_xor_si128(l, h)
    }

    /// `dst = [dst ^] c·src` over 16-byte vectors, scalar nibble tail.
    ///
    /// # Safety
    /// Requires SSSE3. `dst` and `src` must not overlap (guaranteed by
    /// the `&mut`/`&` borrows) and have equal length (checked by the
    /// public wrappers).
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_mul(dst: &mut [u8], src: &[u8], t: &MulTables, accumulate: bool) {
        debug_assert_eq!(dst.len(), src.len());
        // SAFETY: caller guarantees SSSE3; all pointer arithmetic stays
        // within `dst`/`src` because `i + 16 <= n == len` at every load
        // and store, and `loadu`/`storeu` have no alignment requirement.
        unsafe {
            let lo = _mm_loadu_si128(t.lo.as_ptr().cast());
            let hi = _mm_loadu_si128(t.hi.as_ptr().cast());
            let mask = _mm_set1_epi8(0x0F);
            let n = dst.len();
            let mut i = 0;
            while i + 16 <= n {
                let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
                let mut r = mul_vec128(s, lo, hi, mask);
                if accumulate {
                    r = _mm_xor_si128(r, _mm_loadu_si128(dst.as_ptr().add(i).cast()));
                }
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), r);
                i += 16;
            }
            for j in i..n {
                let p = t.mul_byte(src[j]);
                dst[j] = if accumulate { dst[j] ^ p } else { p };
            }
        }
    }

    /// In-place `data = c·data`.
    ///
    /// # Safety
    /// Requires SSSE3.
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_scale(data: &mut [u8], t: &MulTables) {
        // SAFETY: caller guarantees SSSE3; bounds as in `ssse3_mul`.
        unsafe {
            let lo = _mm_loadu_si128(t.lo.as_ptr().cast());
            let hi = _mm_loadu_si128(t.hi.as_ptr().cast());
            let mask = _mm_set1_epi8(0x0F);
            let n = data.len();
            let mut i = 0;
            while i + 16 <= n {
                let v = _mm_loadu_si128(data.as_ptr().add(i).cast());
                _mm_storeu_si128(data.as_mut_ptr().add(i).cast(), mul_vec128(v, lo, hi, mask));
                i += 16;
            }
            for b in data[i..].iter_mut() {
                *b = t.mul_byte(*b);
            }
        }
    }

    /// `dst ^= src` over 16-byte vectors.
    ///
    /// # Safety
    /// Requires SSSE3 (SSE2 strictly, kept uniform with its suite).
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_xor(dst: &mut [u8], src: &[u8]) {
        debug_assert_eq!(dst.len(), src.len());
        // SAFETY: caller guarantees SSSE3; bounds as in `ssse3_mul`.
        unsafe {
            let n = dst.len();
            let mut i = 0;
            while i + 16 <= n {
                let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
                let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(d, s));
                i += 16;
            }
            for j in i..n {
                dst[j] ^= src[j];
            }
        }
    }

    /// Fused row: one load/store of each `dst` vector regardless of the
    /// number of sources; the per-source tables stay L1-resident.
    ///
    /// # Safety
    /// Requires SSSE3. At most [`MAX_FUSE`] sources, each of `dst`'s
    /// length (checked by the public wrappers).
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_mul_multi(dst: &mut [u8], srcs: &[(MulTables, &[u8])], accumulate: bool) {
        debug_assert!(srcs.len() <= MAX_FUSE);
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        // SAFETY: caller guarantees SSSE3; bounds as in `ssse3_mul`, for
        // every source (all sources share `dst`'s length).
        unsafe {
            let mask = _mm_set1_epi8(0x0F);
            let n = dst.len();
            let mut i = 0;
            while i + 16 <= n {
                let mut acc = if accumulate {
                    _mm_loadu_si128(dst.as_ptr().add(i).cast())
                } else {
                    _mm_setzero_si128()
                };
                for (t, s) in srcs {
                    let lo = _mm_loadu_si128(t.lo.as_ptr().cast());
                    let hi = _mm_loadu_si128(t.hi.as_ptr().cast());
                    let v = _mm_loadu_si128(s.as_ptr().add(i).cast());
                    acc = _mm_xor_si128(acc, mul_vec128(v, lo, hi, mask));
                }
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), acc);
                i += 16;
            }
            for j in i..n {
                let mut acc = if accumulate { dst[j] } else { 0 };
                for (t, s) in srcs {
                    acc ^= t.mul_byte(s[j]);
                }
                dst[j] = acc;
            }
        }
    }

    /// Fused XOR row (all coefficients 1): one `dst` pass.
    ///
    /// # Safety
    /// Requires SSSE3. At most [`MAX_FUSE`] sources of `dst`'s length.
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_xor_multi(dst: &mut [u8], srcs: &[&[u8]], accumulate: bool) {
        debug_assert!(srcs.len() <= MAX_FUSE);
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        // SAFETY: caller guarantees SSSE3; bounds as in `ssse3_mul`.
        unsafe {
            let n = dst.len();
            let mut i = 0;
            while i + 16 <= n {
                let mut acc = if accumulate {
                    _mm_loadu_si128(dst.as_ptr().add(i).cast())
                } else {
                    _mm_setzero_si128()
                };
                for s in srcs {
                    acc = _mm_xor_si128(acc, _mm_loadu_si128(s.as_ptr().add(i).cast()));
                }
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), acc);
                i += 16;
            }
            for j in i..n {
                let mut acc = if accumulate { dst[j] } else { 0 };
                for s in srcs {
                    acc ^= s[j];
                }
                dst[j] = acc;
            }
        }
    }

    /// Byte-gather masks deinterleaving 16-bit little-endian symbols:
    /// the even (low) or odd (high) source bytes land in the lower 8
    /// bytes of the shuffled vector, the rest zero (`-1` lanes).
    const GATHER_EVEN: [i8; 16] = [0, 2, 4, 6, 8, 10, 12, 14, -1, -1, -1, -1, -1, -1, -1, -1];
    const GATHER_ODD: [i8; 16] = [1, 3, 5, 7, 9, 11, 13, 15, -1, -1, -1, -1, -1, -1, -1, -1];

    /// The eight nibble tables of one GF(2^16) coefficient in registers:
    /// `[lo₀..lo₃, hi₀..hi₃]` (see [`Nibble16Tables`]).
    ///
    /// # Safety
    /// Requires SSSE3. Each load reads one 16-byte table of `t`.
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn load_tables16(t: &Nibble16Tables) -> [__m128i; 8] {
        // SAFETY: caller guarantees SSSE3; every pointer covers exactly
        // one 16-byte table array.
        unsafe {
            [
                _mm_loadu_si128(t.lo[0].as_ptr().cast()),
                _mm_loadu_si128(t.lo[1].as_ptr().cast()),
                _mm_loadu_si128(t.lo[2].as_ptr().cast()),
                _mm_loadu_si128(t.lo[3].as_ptr().cast()),
                _mm_loadu_si128(t.hi[0].as_ptr().cast()),
                _mm_loadu_si128(t.hi[1].as_ptr().cast()),
                _mm_loadu_si128(t.hi[2].as_ptr().cast()),
                _mm_loadu_si128(t.hi[3].as_ptr().cast()),
            ]
        }
    }

    /// Deinterleaves two loaded payload vectors (32 bytes = 16 symbols)
    /// into their (low bytes, high bytes) vectors, symbol order kept.
    ///
    /// Safe to define: value-only; callers run under SSSE3.
    #[inline]
    #[target_feature(enable = "ssse3")]
    fn deinterleave128(
        va: __m128i,
        vb: __m128i,
        even: __m128i,
        odd: __m128i,
    ) -> (__m128i, __m128i) {
        let lo = _mm_unpacklo_epi64(_mm_shuffle_epi8(va, even), _mm_shuffle_epi8(vb, even));
        let hi = _mm_unpacklo_epi64(_mm_shuffle_epi8(va, odd), _mm_shuffle_epi8(vb, odd));
        (lo, hi)
    }

    /// Split-nibble GF(2^16) product of 16 symbols given their
    /// deinterleaved low/high byte vectors: eight `PSHUFB` lookups,
    /// result still deinterleaved as (low product bytes, high product
    /// bytes).
    ///
    /// Safe to define: value-only; callers run under SSSE3.
    #[inline]
    #[target_feature(enable = "ssse3")]
    fn mul16_vec128(
        lo: __m128i,
        hi: __m128i,
        t: &[__m128i; 8],
        mask: __m128i,
    ) -> (__m128i, __m128i) {
        let n0 = _mm_and_si128(lo, mask);
        let n1 = _mm_and_si128(_mm_srli_epi64::<4>(lo), mask);
        let n2 = _mm_and_si128(hi, mask);
        let n3 = _mm_and_si128(_mm_srli_epi64::<4>(hi), mask);
        let plo = _mm_xor_si128(
            _mm_xor_si128(_mm_shuffle_epi8(t[0], n0), _mm_shuffle_epi8(t[1], n1)),
            _mm_xor_si128(_mm_shuffle_epi8(t[2], n2), _mm_shuffle_epi8(t[3], n3)),
        );
        let phi = _mm_xor_si128(
            _mm_xor_si128(_mm_shuffle_epi8(t[4], n0), _mm_shuffle_epi8(t[5], n1)),
            _mm_xor_si128(_mm_shuffle_epi8(t[6], n2), _mm_shuffle_epi8(t[7], n3)),
        );
        (plo, phi)
    }

    /// GF(2^16) `dst = [dst ^] c·src` over 32-byte blocks (16 symbols):
    /// deinterleave, eight `PSHUFB` lookups, reinterleave; remaining
    /// symbols run the nibble tail.
    ///
    /// # Safety
    /// Requires SSSE3. Equal, even `dst`/`src` lengths (checked by the
    /// public wrappers).
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_mul16(dst: &mut [u8], src: &[u8], t: &Nibble16Tables, accumulate: bool) {
        debug_assert_eq!(dst.len(), src.len());
        debug_assert_eq!(dst.len() % 2, 0);
        // SAFETY: caller guarantees SSSE3; pointer arithmetic stays in
        // bounds because `i + 32 <= n == len` at every load and store.
        unsafe {
            let tabs = load_tables16(t);
            let mask = _mm_set1_epi8(0x0F);
            let even = _mm_loadu_si128(GATHER_EVEN.as_ptr().cast());
            let odd = _mm_loadu_si128(GATHER_ODD.as_ptr().cast());
            let n = dst.len();
            let mut i = 0;
            while i + 32 <= n {
                let va = _mm_loadu_si128(src.as_ptr().add(i).cast());
                let vb = _mm_loadu_si128(src.as_ptr().add(i + 16).cast());
                let (lo, hi) = deinterleave128(va, vb, even, odd);
                let (plo, phi) = mul16_vec128(lo, hi, &tabs, mask);
                let mut outa = _mm_unpacklo_epi8(plo, phi);
                let mut outb = _mm_unpackhi_epi8(plo, phi);
                if accumulate {
                    outa = _mm_xor_si128(outa, _mm_loadu_si128(dst.as_ptr().add(i).cast()));
                    outb = _mm_xor_si128(outb, _mm_loadu_si128(dst.as_ptr().add(i + 16).cast()));
                }
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), outa);
                _mm_storeu_si128(dst.as_mut_ptr().add(i + 16).cast(), outb);
                i += 32;
            }
            while i + 2 <= n {
                let mut p = t.mul_symbol(u16::from_le_bytes([src[i], src[i + 1]]));
                if accumulate {
                    p ^= u16::from_le_bytes([dst[i], dst[i + 1]]);
                }
                dst[i..i + 2].copy_from_slice(&p.to_le_bytes());
                i += 2;
            }
        }
    }

    /// GF(2^16) in-place `data = c·data`.
    ///
    /// # Safety
    /// Requires SSSE3. Even `data` length.
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_scale16(data: &mut [u8], t: &Nibble16Tables) {
        debug_assert_eq!(data.len() % 2, 0);
        // SAFETY: caller guarantees SSSE3; bounds as in `ssse3_mul16`.
        unsafe {
            let tabs = load_tables16(t);
            let mask = _mm_set1_epi8(0x0F);
            let even = _mm_loadu_si128(GATHER_EVEN.as_ptr().cast());
            let odd = _mm_loadu_si128(GATHER_ODD.as_ptr().cast());
            let n = data.len();
            let mut i = 0;
            while i + 32 <= n {
                let va = _mm_loadu_si128(data.as_ptr().add(i).cast());
                let vb = _mm_loadu_si128(data.as_ptr().add(i + 16).cast());
                let (lo, hi) = deinterleave128(va, vb, even, odd);
                let (plo, phi) = mul16_vec128(lo, hi, &tabs, mask);
                _mm_storeu_si128(data.as_mut_ptr().add(i).cast(), _mm_unpacklo_epi8(plo, phi));
                _mm_storeu_si128(
                    data.as_mut_ptr().add(i + 16).cast(),
                    _mm_unpackhi_epi8(plo, phi),
                );
                i += 32;
            }
            while i + 2 <= n {
                let p = t.mul_symbol(u16::from_le_bytes([data[i], data[i + 1]]));
                data[i..i + 2].copy_from_slice(&p.to_le_bytes());
                i += 2;
            }
        }
    }

    /// GF(2^16) fused row: one load/store of each `dst` vector pair
    /// regardless of the number of sources; all eight tables per source
    /// stay L1-resident.
    ///
    /// # Safety
    /// Requires SSSE3. At most [`WIDE16_FUSE`] sources, each of `dst`'s
    /// (even) length.
    #[target_feature(enable = "ssse3")]
    unsafe fn ssse3_mul16_multi(
        dst: &mut [u8],
        srcs: &[(Nibble16Tables, &[u8])],
        accumulate: bool,
    ) {
        debug_assert!(srcs.len() <= WIDE16_FUSE);
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        // SAFETY: caller guarantees SSSE3; bounds as in `ssse3_mul16`,
        // for every source (all sources share `dst`'s length).
        unsafe {
            let mask = _mm_set1_epi8(0x0F);
            let even = _mm_loadu_si128(GATHER_EVEN.as_ptr().cast());
            let odd = _mm_loadu_si128(GATHER_ODD.as_ptr().cast());
            let n = dst.len();
            let mut i = 0;
            while i + 32 <= n {
                let (mut acca, mut accb) = if accumulate {
                    (
                        _mm_loadu_si128(dst.as_ptr().add(i).cast()),
                        _mm_loadu_si128(dst.as_ptr().add(i + 16).cast()),
                    )
                } else {
                    (_mm_setzero_si128(), _mm_setzero_si128())
                };
                for (t, s) in srcs {
                    let tabs = load_tables16(t);
                    let va = _mm_loadu_si128(s.as_ptr().add(i).cast());
                    let vb = _mm_loadu_si128(s.as_ptr().add(i + 16).cast());
                    let (lo, hi) = deinterleave128(va, vb, even, odd);
                    let (plo, phi) = mul16_vec128(lo, hi, &tabs, mask);
                    acca = _mm_xor_si128(acca, _mm_unpacklo_epi8(plo, phi));
                    accb = _mm_xor_si128(accb, _mm_unpackhi_epi8(plo, phi));
                }
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), acca);
                _mm_storeu_si128(dst.as_mut_ptr().add(i + 16).cast(), accb);
                i += 32;
            }
            while i + 2 <= n {
                let mut acc = if accumulate {
                    u16::from_le_bytes([dst[i], dst[i + 1]])
                } else {
                    0
                };
                for (t, s) in srcs {
                    acc ^= t.mul_symbol(u16::from_le_bytes([s[i], s[i + 1]]));
                }
                dst[i..i + 2].copy_from_slice(&acc.to_le_bytes());
                i += 2;
            }
        }
    }

    /// Split-nibble product of 32 bytes via `VPSHUFB` (which looks up
    /// within each 128-bit lane — hence the tables are broadcast to both
    /// lanes).
    ///
    /// Safe to define: it only operates on values, so the sole
    /// obligation — AVX2 being available — is discharged by every caller
    /// already running under `#[target_feature(enable = "avx2")]`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn mul_vec256(v: __m256i, lo: __m256i, hi: __m256i, mask: __m256i) -> __m256i {
        let l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
        let h = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64::<4>(v), mask));
        _mm256_xor_si256(l, h)
    }

    /// Broadcasts a 16-byte nibble table to both 128-bit lanes.
    ///
    /// # Safety
    /// Requires AVX2. `table` must point to 16 readable bytes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn broadcast_table(table: &[u8; 16]) -> __m256i {
        // SAFETY: caller guarantees AVX2 and 16 readable bytes.
        unsafe { _mm256_broadcastsi128_si256(_mm_loadu_si128(table.as_ptr().cast())) }
    }

    /// `dst = [dst ^] c·src` over 32-byte vectors, scalar nibble tail.
    ///
    /// # Safety
    /// Requires AVX2. Equal `dst`/`src` lengths (checked by wrappers).
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_mul(dst: &mut [u8], src: &[u8], t: &MulTables, accumulate: bool) {
        debug_assert_eq!(dst.len(), src.len());
        // SAFETY: caller guarantees AVX2; all pointer arithmetic stays
        // within `dst`/`src` because `i + 32 <= n == len` at every load
        // and store, and `loadu`/`storeu` have no alignment requirement.
        unsafe {
            let lo = broadcast_table(&t.lo);
            let hi = broadcast_table(&t.hi);
            let mask = _mm256_set1_epi8(0x0F);
            let n = dst.len();
            let mut i = 0;
            while i + 32 <= n {
                let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
                let mut r = mul_vec256(s, lo, hi, mask);
                if accumulate {
                    r = _mm256_xor_si256(r, _mm256_loadu_si256(dst.as_ptr().add(i).cast()));
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), r);
                i += 32;
            }
            for j in i..n {
                let p = t.mul_byte(src[j]);
                dst[j] = if accumulate { dst[j] ^ p } else { p };
            }
        }
    }

    /// In-place `data = c·data`.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_scale(data: &mut [u8], t: &MulTables) {
        // SAFETY: caller guarantees AVX2; bounds as in `avx2_mul`.
        unsafe {
            let lo = broadcast_table(&t.lo);
            let hi = broadcast_table(&t.hi);
            let mask = _mm256_set1_epi8(0x0F);
            let n = data.len();
            let mut i = 0;
            while i + 32 <= n {
                let v = _mm256_loadu_si256(data.as_ptr().add(i).cast());
                _mm256_storeu_si256(data.as_mut_ptr().add(i).cast(), mul_vec256(v, lo, hi, mask));
                i += 32;
            }
            for b in data[i..].iter_mut() {
                *b = t.mul_byte(*b);
            }
        }
    }

    /// `dst ^= src` over 32-byte vectors.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_xor(dst: &mut [u8], src: &[u8]) {
        debug_assert_eq!(dst.len(), src.len());
        // SAFETY: caller guarantees AVX2; bounds as in `avx2_mul`.
        unsafe {
            let n = dst.len();
            let mut i = 0;
            while i + 32 <= n {
                let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
                let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d, s));
                i += 32;
            }
            for j in i..n {
                dst[j] ^= src[j];
            }
        }
    }

    /// Fused row over 32-byte vectors: one load/store of each `dst`
    /// vector regardless of the number of sources.
    ///
    /// # Safety
    /// Requires AVX2. At most [`MAX_FUSE`] sources of `dst`'s length.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_mul_multi(dst: &mut [u8], srcs: &[(MulTables, &[u8])], accumulate: bool) {
        debug_assert!(srcs.len() <= MAX_FUSE);
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        // SAFETY: caller guarantees AVX2; bounds as in `avx2_mul`, for
        // every source (all sources share `dst`'s length).
        unsafe {
            let mask = _mm256_set1_epi8(0x0F);
            let n = dst.len();
            let mut i = 0;
            while i + 32 <= n {
                let mut acc = if accumulate {
                    _mm256_loadu_si256(dst.as_ptr().add(i).cast())
                } else {
                    _mm256_setzero_si256()
                };
                for (t, s) in srcs {
                    let lo = broadcast_table(&t.lo);
                    let hi = broadcast_table(&t.hi);
                    let v = _mm256_loadu_si256(s.as_ptr().add(i).cast());
                    acc = _mm256_xor_si256(acc, mul_vec256(v, lo, hi, mask));
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), acc);
                i += 32;
            }
            for j in i..n {
                let mut acc = if accumulate { dst[j] } else { 0 };
                for (t, s) in srcs {
                    acc ^= t.mul_byte(s[j]);
                }
                dst[j] = acc;
            }
        }
    }

    /// The eight nibble tables of one GF(2^16) coefficient, each
    /// broadcast to both 128-bit lanes.
    ///
    /// # Safety
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_tables16_256(t: &Nibble16Tables) -> [__m256i; 8] {
        // SAFETY: caller guarantees AVX2; each table is 16 readable bytes.
        unsafe {
            [
                broadcast_table(&t.lo[0]),
                broadcast_table(&t.lo[1]),
                broadcast_table(&t.lo[2]),
                broadcast_table(&t.lo[3]),
                broadcast_table(&t.hi[0]),
                broadcast_table(&t.hi[1]),
                broadcast_table(&t.hi[2]),
                broadcast_table(&t.hi[3]),
            ]
        }
    }

    /// Deinterleaves two loaded payload vectors (64 bytes = 32 symbols)
    /// into their (low bytes, high bytes) vectors in symbol order.
    /// `VPSHUFB` gathers per lane, so each lane's even (or odd) bytes
    /// land in its low qword; `unpacklo_epi64` pairs the qwords as
    /// `[A₀,B₀|A₁,B₁]` and the `permute4x64` restores `[A₀,A₁,B₀,B₁]`.
    ///
    /// Safe to define: value-only; callers run under AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn deinterleave256(
        va: __m256i,
        vb: __m256i,
        even: __m256i,
        odd: __m256i,
    ) -> (__m256i, __m256i) {
        let lo = _mm256_permute4x64_epi64::<0b1101_1000>(_mm256_unpacklo_epi64(
            _mm256_shuffle_epi8(va, even),
            _mm256_shuffle_epi8(vb, even),
        ));
        let hi = _mm256_permute4x64_epi64::<0b1101_1000>(_mm256_unpacklo_epi64(
            _mm256_shuffle_epi8(va, odd),
            _mm256_shuffle_epi8(vb, odd),
        ));
        (lo, hi)
    }

    /// Split-nibble GF(2^16) product of 32 symbols (deinterleaved form):
    /// eight `VPSHUFB` lookups.
    ///
    /// Safe to define: value-only; callers run under AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn mul16_vec256(
        lo: __m256i,
        hi: __m256i,
        t: &[__m256i; 8],
        mask: __m256i,
    ) -> (__m256i, __m256i) {
        let n0 = _mm256_and_si256(lo, mask);
        let n1 = _mm256_and_si256(_mm256_srli_epi64::<4>(lo), mask);
        let n2 = _mm256_and_si256(hi, mask);
        let n3 = _mm256_and_si256(_mm256_srli_epi64::<4>(hi), mask);
        let plo = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_shuffle_epi8(t[0], n0), _mm256_shuffle_epi8(t[1], n1)),
            _mm256_xor_si256(_mm256_shuffle_epi8(t[2], n2), _mm256_shuffle_epi8(t[3], n3)),
        );
        let phi = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_shuffle_epi8(t[4], n0), _mm256_shuffle_epi8(t[5], n1)),
            _mm256_xor_si256(_mm256_shuffle_epi8(t[6], n2), _mm256_shuffle_epi8(t[7], n3)),
        );
        (plo, phi)
    }

    /// Reinterleaves product byte vectors back into two payload vectors.
    /// `unpack{lo,hi}_epi8` interleave per lane, leaving the four symbol
    /// octets as `[s0₋8|s16₋24]` and `[s8₋16|s24₋32]`; the two lane
    /// permutes reassemble contiguous payload order.
    ///
    /// Safe to define: value-only; callers run under AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn interleave256(plo: __m256i, phi: __m256i) -> (__m256i, __m256i) {
        let il = _mm256_unpacklo_epi8(plo, phi);
        let ih = _mm256_unpackhi_epi8(plo, phi);
        (
            _mm256_permute2x128_si256::<0x20>(il, ih),
            _mm256_permute2x128_si256::<0x31>(il, ih),
        )
    }

    /// GF(2^16) `dst = [dst ^] c·src` over 64-byte blocks (32 symbols).
    ///
    /// # Safety
    /// Requires AVX2. Equal, even `dst`/`src` lengths (checked by the
    /// public wrappers).
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_mul16(dst: &mut [u8], src: &[u8], t: &Nibble16Tables, accumulate: bool) {
        debug_assert_eq!(dst.len(), src.len());
        debug_assert_eq!(dst.len() % 2, 0);
        // SAFETY: caller guarantees AVX2; pointer arithmetic stays in
        // bounds because `i + 64 <= n == len` at every load and store.
        unsafe {
            let tabs = load_tables16_256(t);
            let mask = _mm256_set1_epi8(0x0F);
            let even = _mm256_broadcastsi128_si256(_mm_loadu_si128(GATHER_EVEN.as_ptr().cast()));
            let odd = _mm256_broadcastsi128_si256(_mm_loadu_si128(GATHER_ODD.as_ptr().cast()));
            let n = dst.len();
            let mut i = 0;
            while i + 64 <= n {
                let va = _mm256_loadu_si256(src.as_ptr().add(i).cast());
                let vb = _mm256_loadu_si256(src.as_ptr().add(i + 32).cast());
                let (lo, hi) = deinterleave256(va, vb, even, odd);
                let (plo, phi) = mul16_vec256(lo, hi, &tabs, mask);
                let (mut outa, mut outb) = interleave256(plo, phi);
                if accumulate {
                    outa = _mm256_xor_si256(outa, _mm256_loadu_si256(dst.as_ptr().add(i).cast()));
                    outb =
                        _mm256_xor_si256(outb, _mm256_loadu_si256(dst.as_ptr().add(i + 32).cast()));
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), outa);
                _mm256_storeu_si256(dst.as_mut_ptr().add(i + 32).cast(), outb);
                i += 64;
            }
            while i + 2 <= n {
                let mut p = t.mul_symbol(u16::from_le_bytes([src[i], src[i + 1]]));
                if accumulate {
                    p ^= u16::from_le_bytes([dst[i], dst[i + 1]]);
                }
                dst[i..i + 2].copy_from_slice(&p.to_le_bytes());
                i += 2;
            }
        }
    }

    /// GF(2^16) in-place `data = c·data`.
    ///
    /// # Safety
    /// Requires AVX2. Even `data` length.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_scale16(data: &mut [u8], t: &Nibble16Tables) {
        debug_assert_eq!(data.len() % 2, 0);
        // SAFETY: caller guarantees AVX2; bounds as in `avx2_mul16`.
        unsafe {
            let tabs = load_tables16_256(t);
            let mask = _mm256_set1_epi8(0x0F);
            let even = _mm256_broadcastsi128_si256(_mm_loadu_si128(GATHER_EVEN.as_ptr().cast()));
            let odd = _mm256_broadcastsi128_si256(_mm_loadu_si128(GATHER_ODD.as_ptr().cast()));
            let n = data.len();
            let mut i = 0;
            while i + 64 <= n {
                let va = _mm256_loadu_si256(data.as_ptr().add(i).cast());
                let vb = _mm256_loadu_si256(data.as_ptr().add(i + 32).cast());
                let (lo, hi) = deinterleave256(va, vb, even, odd);
                let (plo, phi) = mul16_vec256(lo, hi, &tabs, mask);
                let (outa, outb) = interleave256(plo, phi);
                _mm256_storeu_si256(data.as_mut_ptr().add(i).cast(), outa);
                _mm256_storeu_si256(data.as_mut_ptr().add(i + 32).cast(), outb);
                i += 64;
            }
            while i + 2 <= n {
                let p = t.mul_symbol(u16::from_le_bytes([data[i], data[i + 1]]));
                data[i..i + 2].copy_from_slice(&p.to_le_bytes());
                i += 2;
            }
        }
    }

    /// GF(2^16) fused row over 64-byte blocks: one load/store of each
    /// `dst` vector pair regardless of the number of sources.
    ///
    /// # Safety
    /// Requires AVX2. At most [`WIDE16_FUSE`] sources, each of `dst`'s
    /// (even) length.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_mul16_multi(dst: &mut [u8], srcs: &[(Nibble16Tables, &[u8])], accumulate: bool) {
        debug_assert!(srcs.len() <= WIDE16_FUSE);
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        // SAFETY: caller guarantees AVX2; bounds as in `avx2_mul16`, for
        // every source (all sources share `dst`'s length).
        unsafe {
            let mask = _mm256_set1_epi8(0x0F);
            let even = _mm256_broadcastsi128_si256(_mm_loadu_si128(GATHER_EVEN.as_ptr().cast()));
            let odd = _mm256_broadcastsi128_si256(_mm_loadu_si128(GATHER_ODD.as_ptr().cast()));
            let n = dst.len();
            let mut i = 0;
            while i + 64 <= n {
                let (mut acca, mut accb) = if accumulate {
                    (
                        _mm256_loadu_si256(dst.as_ptr().add(i).cast()),
                        _mm256_loadu_si256(dst.as_ptr().add(i + 32).cast()),
                    )
                } else {
                    (_mm256_setzero_si256(), _mm256_setzero_si256())
                };
                for (t, s) in srcs {
                    let tabs = load_tables16_256(t);
                    let va = _mm256_loadu_si256(s.as_ptr().add(i).cast());
                    let vb = _mm256_loadu_si256(s.as_ptr().add(i + 32).cast());
                    let (lo, hi) = deinterleave256(va, vb, even, odd);
                    let (plo, phi) = mul16_vec256(lo, hi, &tabs, mask);
                    let (outa, outb) = interleave256(plo, phi);
                    acca = _mm256_xor_si256(acca, outa);
                    accb = _mm256_xor_si256(accb, outb);
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), acca);
                _mm256_storeu_si256(dst.as_mut_ptr().add(i + 32).cast(), accb);
                i += 64;
            }
            while i + 2 <= n {
                let mut acc = if accumulate {
                    u16::from_le_bytes([dst[i], dst[i + 1]])
                } else {
                    0
                };
                for (t, s) in srcs {
                    acc ^= t.mul_symbol(u16::from_le_bytes([s[i], s[i + 1]]));
                }
                dst[i..i + 2].copy_from_slice(&acc.to_le_bytes());
                i += 2;
            }
        }
    }

    /// Fused XOR row over 32-byte vectors.
    ///
    /// # Safety
    /// Requires AVX2. At most [`MAX_FUSE`] sources of `dst`'s length.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_xor_multi(dst: &mut [u8], srcs: &[&[u8]], accumulate: bool) {
        debug_assert!(srcs.len() <= MAX_FUSE);
        if srcs.is_empty() {
            if !accumulate {
                dst.fill(0);
            }
            return;
        }
        // SAFETY: caller guarantees AVX2; bounds as in `avx2_mul`.
        unsafe {
            let n = dst.len();
            let mut i = 0;
            while i + 32 <= n {
                let mut acc = if accumulate {
                    _mm256_loadu_si256(dst.as_ptr().add(i).cast())
                } else {
                    _mm256_setzero_si256()
                };
                for s in srcs {
                    acc = _mm256_xor_si256(acc, _mm256_loadu_si256(s.as_ptr().add(i).cast()));
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), acc);
                i += 32;
            }
            for j in i..n {
                let mut acc = if accumulate { dst[j] } else { 0 };
                for s in srcs {
                    acc ^= s[j];
                }
                dst[j] = acc;
            }
        }
    }
}
