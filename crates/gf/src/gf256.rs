//! GF(2^8), the workhorse field for block payload coding.

use crate::tables::impl_table_field;

impl_table_field!(
    /// An element of GF(2^8) (polynomial `x^8 + x^4 + x^3 + x^2 + 1`).
    ///
    /// One symbol per payload byte. `ORDER - 1 = 255 ≥ n = 16`, so every
    /// code in the paper — RS(10,4) and the (10,6,5) LRC, blocklength
    /// 14/16 — fits comfortably, as do the §7 archival stripes of 50–100
    /// blocks.
    Gf256,
    u8,
    8,
    crate::poly::PRIMITIVE_POLY_8
);

#[cfg(test)]
mod tests {
    use super::Gf256;
    use crate::poly::{clmul_mod, PRIMITIVE_POLY_8};
    use crate::Field;
    use proptest::prelude::*;

    #[test]
    fn matches_reference_multiplication_exhaustively() {
        for a in 0..256u32 {
            for b in 0..256u32 {
                let expect = clmul_mod(a, b, PRIMITIVE_POLY_8, 8);
                let got = Gf256::from_index(a) * Gf256::from_index(b);
                assert_eq!(got.index(), expect, "{a} * {b}");
            }
        }
    }

    #[test]
    fn inverse_round_trip_exhaustive() {
        for a in 1..256u32 {
            let x = Gf256::from_index(a);
            assert_eq!(x * x.inv().unwrap(), Gf256::ONE);
            assert_eq!((x / x), Gf256::ONE);
        }
    }

    #[test]
    fn exp_wraps_modulo_group_order() {
        assert_eq!(Gf256::exp(0), Gf256::ONE);
        assert_eq!(Gf256::exp(255), Gf256::ONE);
        assert_eq!(Gf256::exp(256), Gf256::generator());
        assert_eq!(Gf256::exp(510), Gf256::ONE);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let x = Gf256::from_index(0x9D);
        let mut acc = Gf256::ONE;
        for e in 0..20u64 {
            assert_eq!(x.pow(e), acc);
            acc *= x;
        }
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(5), Gf256::ZERO);
    }

    #[test]
    fn elements_iterator_is_complete() {
        let all: Vec<Gf256> = Gf256::elements().collect();
        assert_eq!(all.len(), 256);
        assert_eq!(all[0], Gf256::ZERO);
        assert_eq!(all[1], Gf256::ONE);
    }

    #[test]
    fn symbol_serialization_round_trip() {
        let mut buf = [0u8; 1];
        for a in 0..256u32 {
            let x = Gf256::from_index(a);
            x.write_symbol(&mut buf);
            assert_eq!(Gf256::read_symbol(&buf), x);
        }
    }

    fn any_elem() -> impl Strategy<Value = Gf256> {
        (0u32..256).prop_map(Gf256::from_index)
    }

    proptest! {
        #[test]
        fn addition_is_commutative_and_self_inverse(a in any_elem(), b in any_elem()) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a + a, Gf256::ZERO);
            prop_assert_eq!(a - b, a + b);
            prop_assert_eq!(-a, a);
        }

        #[test]
        fn multiplication_is_associative(a in any_elem(), b in any_elem(), c in any_elem()) {
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn multiplication_distributes_over_addition(
            a in any_elem(), b in any_elem(), c in any_elem()
        ) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn division_inverts_multiplication(a in any_elem(), b in any_elem()) {
            prop_assume!(!b.is_zero());
            prop_assert_eq!((a * b) / b, a);
            prop_assert_eq!(a.checked_div(b).unwrap() * b, a);
        }

        #[test]
        fn pow_law_of_exponents(a in any_elem(), e1 in 0u64..64, e2 in 0u64..64) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
        }
    }
}
