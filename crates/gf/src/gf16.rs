//! GF(2^4), used for small deterministic code-construction searches.

use crate::tables::impl_table_field;

impl_table_field!(
    /// An element of GF(2^4) (polynomial `x^4 + x + 1`).
    ///
    /// Sixteen elements; mainly useful for exhaustive tests and for the
    /// deterministic (exponential-time) coefficient searches the paper
    /// notes are "useful only for small code constructions".
    Gf16,
    u8,
    4,
    crate::poly::PRIMITIVE_POLY_4
);

#[cfg(test)]
mod tests {
    use super::Gf16;
    use crate::poly::{clmul_mod, PRIMITIVE_POLY_4};
    use crate::Field;

    #[test]
    fn matches_reference_multiplication_exhaustively() {
        for a in 0..16u32 {
            for b in 0..16u32 {
                let expect = clmul_mod(a, b, PRIMITIVE_POLY_4, 4);
                let got = Gf16::from_index(a) * Gf16::from_index(b);
                assert_eq!(got.index(), expect, "{a} * {b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..16u32 {
            let x = Gf16::from_index(a);
            let inv = x.inv().expect("nonzero must invert");
            assert_eq!(x * inv, Gf16::ONE);
        }
        assert_eq!(Gf16::ZERO.inv(), None);
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = std::collections::HashSet::new();
        let mut v = Gf16::ONE;
        for _ in 0..15 {
            assert!(seen.insert(v));
            v *= Gf16::generator();
        }
        assert_eq!(v, Gf16::ONE);
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn log_exp_round_trip() {
        for a in 1..16u32 {
            let x = Gf16::from_index(a);
            assert_eq!(Gf16::exp(x.log().unwrap()), x);
        }
    }
}
