//! Bulk kernels over block payloads, with runtime-dispatched SIMD.
//!
//! Erasure coding a 64 MB HDFS block is a long stream of
//! `dst ^= c * src` operations over GF(2^8) bytes. These kernels are the
//! hot path of the codecs, and they come in two shapes:
//!
//! * **single-source** — [`xor_into`], [`mul_into`], [`mul_acc`],
//!   [`scale`] and their generic [`payload_mul_into`] /
//!   [`payload_mul_acc`] / [`payload_scale`] counterparts;
//! * **fused multi-source** — [`xor_into_multi`], [`mul_into_multi`],
//!   [`mul_acc_multi`] and the generic [`payload_mul_into_multi`] /
//!   [`payload_mul_acc_multi`], which compute a whole row
//!   `dst = Σ cᵢ·srcᵢ` in **one pass over `dst`**. A `(k, m)` encode or
//!   a compiled heavy repair combines `k` sources per output lane;
//!   issuing the row as one fused call instead of `k` accumulate calls
//!   divides the `dst` memory traffic by `k`, which is where most of the
//!   non-SIMD time went.
//!
//! # Kernel selection
//!
//! Three interchangeable backends implement the byte kernels (see
//! [`KernelBackend`]): portable **scalar** code (256-entry product-row
//! lookups, `u64`-wide XOR), **ssse3** (128-bit `PSHUFB` split-nibble),
//! and **avx2** (256-bit `VPSHUFB`). The module-level functions dispatch
//! through a process-wide suite chosen once, on first use:
//!
//! 1. If `XORBAS_FORCE_SCALAR` is set to a non-empty value other than
//!    `"0"`, the scalar fallback is used unconditionally — this is how
//!    CI keeps the portable path exercised.
//! 2. Otherwise, if `XORBAS_KERNEL_BACKEND` names a backend (`scalar`,
//!    `ssse3`, `avx2`), that backend is used when the CPU supports it
//!    (silently falling back to scalar when it does not).
//! 3. Otherwise the best backend the CPU supports wins, probed with
//!    `is_x86_feature_detected!`: avx2, then ssse3, then scalar.
//!
//! [`KernelBackend::active`] reports the outcome, and every kernel is
//! also callable on an explicit backend (e.g.
//! [`KernelBackend::mul_acc`]) so benchmarks and equivalence tests can
//! compare implementations inside one process.
//!
//! To add a backend (NEON is the obvious next one): implement the
//! `KernelSuite` function set in the crate's private `simd` module
//! behind the appropriate `target_arch` gate, add a [`KernelBackend`]
//! variant with its detection
//! (`std::arch::is_aarch64_feature_detected!`), and extend `suite_for`
//! — the dispatch, override plumbing, equivalence tests and benches
//! pick it up from [`KernelBackend::ALL`].
//!
//! # Field widths
//!
//! Byte-wide fields (GF(2^8), and GF(2^4) with one symbol per byte —
//! source bytes are truncated to the field like `Field::from_index`,
//! accumulation is bytewise XOR) run the dispatched byte kernels.
//! GF(2^16) payloads run dedicated two-byte-symbol kernels, dispatched
//! like the byte kernels: the **scalar** backend streams two 256-entry
//! split `u16` tables (`c·lo` and `c·(hi·256)`), while **ssse3** and
//! **avx2** decompose each symbol into four nibbles and look all four
//! product contributions up with eight 16-entry `PSHUFB`/`VPSHUFB`
//! tables per coefficient (deinterleave low/high bytes, eight shuffles,
//! reinterleave — the payload length must be a whole number of 2-byte
//! symbols). Wider or odd-sized fields fall back to a symbol-at-a-time
//! loop.
//!
//! Generic symbol-slice variants (`gf_*`) are provided for matrices and
//! codecs instantiated over other fields.

// Hot-path module: every index must be justified. The fused `combine_*`
// batchers carry audited allows (batch counters are flushed at capacity,
// so they never reach the array length).
#![warn(clippy::indexing_slicing)]

use crate::simd::{
    active_suite, suite_for, KernelSuite, MulTables, Nibble16Tables, MAX_FUSE, WIDE16_FUSE,
};
use crate::{Field, Gf256};

pub use crate::simd::KernelBackend;

// xlint::hot-path(payload-ops) begin
// Everything from here to the end marker runs once per payload lane per
// stripe; table state lives on the stack and nothing heap-allocates.
// The Vec-returning symbol converters below the marker are cold-path.

/// `dst[i] ^= src[i]` for all `i`. Panics if lengths differ.
///
/// This is the entirety of the paper's *light decoder* arithmetic: local
/// parities use coefficients `c_i = 1`, so single-failure repair "performs
/// a simple XOR" (§3.1.2).
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "payload length mismatch");
    (active_suite().xor_into)(dst, src);
}

/// Fused `dst ^= src₀ ^ src₁ ^ …` in one pass over `dst`.
///
/// Panics if any source length differs from `dst`. An empty source list
/// is a no-op.
pub fn xor_into_multi(dst: &mut [u8], srcs: &[&[u8]]) {
    for s in srcs {
        assert_eq!(dst.len(), s.len(), "payload length mismatch");
    }
    let suite = active_suite();
    for batch in srcs.chunks(MAX_FUSE) {
        (suite.xor_multi)(dst, batch, true);
    }
}

/// The product row of a coefficient: `row[x] = c * x` for every byte `x`.
///
/// This is the representation the scalar kernels stream through; the
/// SIMD backends use the two 16-entry nibble tables it expands from.
#[inline]
pub fn product_row(c: Gf256) -> [u8; 256] {
    MulTables::build(c).expand_row()
}

/// `dst[i] = c * src[i]` for all `i`. Panics if lengths differ.
pub fn mul_into(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "payload length mismatch");
    byte_mul(active_suite(), dst, src, c, false);
}

/// `dst[i] ^= c * src[i]` for all `i`. Panics if lengths differ.
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "payload length mismatch");
    byte_mul(active_suite(), dst, src, c, true);
}

/// Fused row `dst = Σ cᵢ·srcᵢ` over GF(2^8) in one pass over `dst`.
///
/// Overwrites `dst` entirely (zero-filling it when every coefficient is
/// zero). Panics if any source length differs from `dst`.
pub fn mul_into_multi(dst: &mut [u8], srcs: &[(Gf256, &[u8])]) {
    payload_mul_into_multi(dst, srcs);
}

/// Fused row `dst ^= Σ cᵢ·srcᵢ` over GF(2^8) in one pass over `dst`.
///
/// Panics if any source length differs from `dst`.
pub fn mul_acc_multi(dst: &mut [u8], srcs: &[(Gf256, &[u8])]) {
    payload_mul_acc_multi(dst, srcs);
}

/// In-place scaling: `data[i] *= c`.
pub fn scale(data: &mut [u8], c: Gf256) {
    byte_scale(active_suite(), data, c);
}

/// Generic-field variant of [`xor_into`] over symbol slices.
pub fn gf_add_assign<F: Field>(dst: &mut [F], src: &[F]) {
    assert_eq!(dst.len(), src.len(), "symbol length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d += *s;
    }
}

/// Generic-field variant of [`mul_acc`] over symbol slices.
pub fn gf_mul_acc<F: Field>(dst: &mut [F], src: &[F], c: F) {
    assert_eq!(dst.len(), src.len(), "symbol length mismatch");
    if c.is_zero() {
        return;
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d += *s * c;
    }
}

/// Generic-field variant of [`scale`] over symbol slices.
pub fn gf_scale<F: Field>(data: &mut [F], c: F) {
    for d in data.iter_mut() {
        *d *= c;
    }
}

/// `dst = c * src` over *byte payloads* for any field.
///
/// The overwrite counterpart of [`payload_mul_acc`]: encode and compiled
/// repair steps start each output lane with this, skipping the zero-fill
/// pass an accumulate-only kernel would need. Byte-wide fields run the
/// dispatched byte kernels; GF(2^16) runs the split-table kernels (the
/// payload length must then be a multiple of the symbol width); other
/// widths fall back to a symbol-at-a-time loop.
pub fn payload_mul_into<F: Field>(dst: &mut [u8], src: &[u8], c: F) {
    payload_mul_into_in(active_suite(), dst, src, c);
}

fn payload_mul_into_in<F: Field>(suite: &KernelSuite, dst: &mut [u8], src: &[u8], c: F) {
    assert_eq!(dst.len(), src.len(), "payload length mismatch");
    if c.is_zero() {
        dst.fill(0);
        return;
    }
    if F::SYMBOL_BYTES == 1 {
        byte_mul_payload(suite, dst, src, c, false);
        return;
    }
    check_symbol_multiple::<F>(dst.len());
    if c == F::ONE {
        dst.copy_from_slice(src);
        return;
    }
    if F::BITS == 16 {
        (suite.mul16_into)(dst, src, &Nibble16Tables::build(c));
        return;
    }
    let b = F::SYMBOL_BYTES;
    for (dc, sc) in dst.chunks_exact_mut(b).zip(src.chunks_exact(b)) {
        (c * F::read_symbol(sc)).write_symbol(dc);
    }
}

/// `dst ^= c * src` over *byte payloads* for any field.
///
/// Byte-wide fields run the dispatched byte kernels; GF(2^16) runs the
/// split-table kernels (the payload length must then be a multiple of
/// the symbol width); other widths fall back to a symbol-at-a-time loop.
pub fn payload_mul_acc<F: Field>(dst: &mut [u8], src: &[u8], c: F) {
    payload_mul_acc_in(active_suite(), dst, src, c);
}

fn payload_mul_acc_in<F: Field>(suite: &KernelSuite, dst: &mut [u8], src: &[u8], c: F) {
    assert_eq!(dst.len(), src.len(), "payload length mismatch");
    if c.is_zero() {
        return;
    }
    if F::SYMBOL_BYTES == 1 {
        byte_mul_payload(suite, dst, src, c, true);
        return;
    }
    check_symbol_multiple::<F>(dst.len());
    if c == F::ONE {
        // Addition is XOR in every GF(2^m), whatever the symbol width.
        (suite.xor_into)(dst, src);
        return;
    }
    if F::BITS == 16 {
        (suite.mul16_acc)(dst, src, &Nibble16Tables::build(c));
        return;
    }
    let b = F::SYMBOL_BYTES;
    for (dc, sc) in dst.chunks_exact_mut(b).zip(src.chunks_exact(b)) {
        let v = F::read_symbol(dc) + c * F::read_symbol(sc);
        v.write_symbol(dc);
    }
}

/// In-place byte-payload scaling `data *= c` for any field.
pub fn payload_scale<F: Field>(data: &mut [u8], c: F) {
    payload_scale_in(active_suite(), data, c);
}

fn payload_scale_in<F: Field>(suite: &KernelSuite, data: &mut [u8], c: F) {
    if c == F::ONE {
        return;
    }
    if c.is_zero() {
        data.fill(0);
        return;
    }
    if F::SYMBOL_BYTES == 1 {
        byte_scale_payload(suite, data, c);
        return;
    }
    check_symbol_multiple::<F>(data.len());
    if F::BITS == 16 {
        (suite.scale16)(data, &Nibble16Tables::build(c));
        return;
    }
    let b = F::SYMBOL_BYTES;
    for dc in data.chunks_exact_mut(b) {
        let v = F::read_symbol(dc) * c;
        v.write_symbol(dc);
    }
}

/// Fused row `dst = Σ cᵢ·srcᵢ` over byte payloads for any field, one
/// pass over `dst`.
///
/// Overwrites `dst` entirely (zero-filling it when no source has a
/// nonzero coefficient). Panics if any source length differs from `dst`.
pub fn payload_mul_into_multi<F: Field>(dst: &mut [u8], srcs: &[(F, &[u8])]) {
    payload_combine(active_suite(), dst, srcs, false);
}

/// Fused row `dst ^= Σ cᵢ·srcᵢ` over byte payloads for any field, one
/// pass over `dst`.
///
/// Panics if any source length differs from `dst`.
pub fn payload_mul_acc_multi<F: Field>(dst: &mut [u8], srcs: &[(F, &[u8])]) {
    payload_combine(active_suite(), dst, srcs, true);
}

impl KernelBackend {
    /// [`xor_into`] on this backend (scalar fallback when unsupported).
    pub fn xor_into(self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "payload length mismatch");
        (suite_for(self).xor_into)(dst, src);
    }

    /// [`xor_into_multi`] on this backend.
    pub fn xor_into_multi(self, dst: &mut [u8], srcs: &[&[u8]]) {
        for s in srcs {
            assert_eq!(dst.len(), s.len(), "payload length mismatch");
        }
        let suite = suite_for(self);
        for batch in srcs.chunks(MAX_FUSE) {
            (suite.xor_multi)(dst, batch, true);
        }
    }

    /// [`mul_into`] on this backend.
    pub fn mul_into(self, dst: &mut [u8], src: &[u8], c: Gf256) {
        assert_eq!(dst.len(), src.len(), "payload length mismatch");
        byte_mul(suite_for(self), dst, src, c, false);
    }

    /// [`mul_acc`] on this backend.
    pub fn mul_acc(self, dst: &mut [u8], src: &[u8], c: Gf256) {
        assert_eq!(dst.len(), src.len(), "payload length mismatch");
        byte_mul(suite_for(self), dst, src, c, true);
    }

    /// [`scale`] on this backend.
    pub fn scale(self, data: &mut [u8], c: Gf256) {
        byte_scale(suite_for(self), data, c);
    }

    /// [`mul_into_multi`] on this backend.
    pub fn mul_into_multi(self, dst: &mut [u8], srcs: &[(Gf256, &[u8])]) {
        payload_combine(suite_for(self), dst, srcs, false);
    }

    /// [`mul_acc_multi`] on this backend.
    pub fn mul_acc_multi(self, dst: &mut [u8], srcs: &[(Gf256, &[u8])]) {
        payload_combine(suite_for(self), dst, srcs, true);
    }

    /// [`payload_mul_into`] on this backend.
    pub fn payload_mul_into<F: Field>(self, dst: &mut [u8], src: &[u8], c: F) {
        payload_mul_into_in(suite_for(self), dst, src, c);
    }

    /// [`payload_mul_acc`] on this backend.
    pub fn payload_mul_acc<F: Field>(self, dst: &mut [u8], src: &[u8], c: F) {
        payload_mul_acc_in(suite_for(self), dst, src, c);
    }

    /// [`payload_scale`] on this backend.
    pub fn payload_scale<F: Field>(self, data: &mut [u8], c: F) {
        payload_scale_in(suite_for(self), data, c);
    }

    /// [`payload_mul_into_multi`] on this backend.
    pub fn payload_mul_into_multi<F: Field>(self, dst: &mut [u8], srcs: &[(F, &[u8])]) {
        payload_combine(suite_for(self), dst, srcs, false);
    }

    /// [`payload_mul_acc_multi`] on this backend.
    pub fn payload_mul_acc_multi<F: Field>(self, dst: &mut [u8], srcs: &[(F, &[u8])]) {
        payload_combine(suite_for(self), dst, srcs, true);
    }
}

/// Whether the `c == ONE` byte-XOR shortcut is sound for `F`: only for
/// true 8-bit fields. Sub-byte fields (GF(2^4)) must still truncate
/// source bytes through the tables, which raw XOR would skip.
fn one_is_xor<F: Field>() -> bool {
    F::BITS == 8
}

/// Single-source byte-payload multiply for any byte-wide field.
fn byte_mul_payload<F: Field>(
    suite: &KernelSuite,
    dst: &mut [u8],
    src: &[u8],
    c: F,
    accumulate: bool,
) {
    debug_assert_eq!(F::SYMBOL_BYTES, 1);
    if c == F::ONE && one_is_xor::<F>() {
        if accumulate {
            (suite.xor_into)(dst, src);
        } else {
            dst.copy_from_slice(src);
        }
        return;
    }
    let t = MulTables::build(c);
    if accumulate {
        (suite.mul_acc)(dst, src, &t);
    } else {
        (suite.mul_into)(dst, src, &t);
    }
}

/// GF(2^8) single-source multiply with the zero/one shortcuts.
fn byte_mul(suite: &KernelSuite, dst: &mut [u8], src: &[u8], c: Gf256, accumulate: bool) {
    if c == Gf256::ZERO {
        if !accumulate {
            dst.fill(0);
        }
        return;
    }
    byte_mul_payload(suite, dst, src, c, accumulate);
}

/// GF(2^8) in-place scale with the zero/one shortcuts.
fn byte_scale(suite: &KernelSuite, data: &mut [u8], c: Gf256) {
    if c == Gf256::ONE {
        return;
    }
    if c == Gf256::ZERO {
        data.fill(0);
        return;
    }
    (suite.scale)(data, &MulTables::build(c));
}

/// In-place scale for any byte-wide field (the zero and one shortcuts
/// are handled by the caller).
fn byte_scale_payload<F: Field>(suite: &KernelSuite, data: &mut [u8], c: F) {
    debug_assert_eq!(F::SYMBOL_BYTES, 1);
    (suite.scale)(data, &MulTables::build(c));
}

/// Fused-row engine: partitions the sources into unit-coefficient XOR
/// batches and general multiply batches (each at most
/// [`MAX_FUSE`] wide, so per-source table state stays on the stack and
/// in L1) and issues them so `dst` is overwritten exactly once when
/// `accumulate` is false. This is the single entry point every
/// multi-source payload call funnels through, whatever the field width.
fn payload_combine<F: Field>(
    suite: &KernelSuite,
    dst: &mut [u8],
    srcs: &[(F, &[u8])],
    accumulate: bool,
) {
    for (_, s) in srcs {
        assert_eq!(dst.len(), s.len(), "payload length mismatch");
    }
    if F::SYMBOL_BYTES == 1 {
        combine_bytes(suite, dst, srcs, accumulate);
        return;
    }
    check_symbol_multiple::<F>(dst.len());
    if F::BITS == 16 {
        combine_wide16(suite, dst, srcs, accumulate);
        return;
    }
    // Odd-width fallback: symbol-at-a-time accumulation.
    let mut wrote = accumulate;
    for &(c, s) in srcs {
        if c.is_zero() {
            continue;
        }
        if !wrote {
            payload_mul_into_in(suite, dst, s, c);
            wrote = true;
        } else {
            payload_mul_acc_in(suite, dst, s, c);
        }
    }
    if !wrote {
        dst.fill(0);
    }
}

/// Byte-wide fused row: nibble-table batches + XOR batches.
// Batch counters flush at MAX_FUSE, so `ones[n_ones]` / `muls[n_muls]`
// stay in bounds.
#[allow(clippy::indexing_slicing)]
fn combine_bytes<F: Field>(
    suite: &KernelSuite,
    dst: &mut [u8],
    srcs: &[(F, &[u8])],
    accumulate: bool,
) {
    let mut wrote = accumulate;
    let mut ones: [&[u8]; MAX_FUSE] = [&[]; MAX_FUSE];
    let mut n_ones = 0;
    let mut muls: [(MulTables, &[u8]); MAX_FUSE] = [(
        MulTables {
            lo: [0; 16],
            hi: [0; 16],
        },
        &[],
    ); MAX_FUSE];
    let mut n_muls = 0;
    for &(c, s) in srcs {
        if c.is_zero() {
            continue;
        }
        if c == F::ONE && one_is_xor::<F>() {
            ones[n_ones] = s;
            n_ones += 1;
            if n_ones == MAX_FUSE {
                (suite.xor_multi)(dst, &ones[..n_ones], wrote);
                wrote = true;
                n_ones = 0;
            }
        } else {
            muls[n_muls] = (MulTables::build(c), s);
            n_muls += 1;
            if n_muls == MAX_FUSE {
                (suite.mul_multi)(dst, &muls[..n_muls], wrote);
                wrote = true;
                n_muls = 0;
            }
        }
    }
    if n_muls > 0 {
        (suite.mul_multi)(dst, &muls[..n_muls], wrote);
        wrote = true;
    }
    if n_ones > 0 {
        (suite.xor_multi)(dst, &ones[..n_ones], wrote);
        wrote = true;
    }
    if !wrote {
        dst.fill(0);
    }
}

/// GF(2^16) fused row: nibble-table batches + XOR batches, handed to
/// the backend's fused two-byte-symbol kernel so `dst` is streamed
/// through memory once.
// Batch counters flush at MAX_FUSE / WIDE16_FUSE, so the batch-array
// indexing stays in bounds.
#[allow(clippy::indexing_slicing)]
fn combine_wide16<F: Field>(
    suite: &KernelSuite,
    dst: &mut [u8],
    srcs: &[(F, &[u8])],
    accumulate: bool,
) {
    const EMPTY16: Nibble16Tables = Nibble16Tables {
        lo: [[0; 16]; 4],
        hi: [[0; 16]; 4],
    };
    let mut wrote = accumulate;
    let mut ones: [&[u8]; MAX_FUSE] = [&[]; MAX_FUSE];
    let mut n_ones = 0;
    let mut muls: [(Nibble16Tables, &[u8]); WIDE16_FUSE] = [(EMPTY16, &[]); WIDE16_FUSE];
    let mut n_muls = 0;
    for &(c, s) in srcs {
        if c.is_zero() {
            continue;
        }
        if c == F::ONE {
            ones[n_ones] = s;
            n_ones += 1;
            if n_ones == MAX_FUSE {
                (suite.xor_multi)(dst, &ones[..n_ones], wrote);
                wrote = true;
                n_ones = 0;
            }
        } else {
            muls[n_muls] = (Nibble16Tables::build(c), s);
            n_muls += 1;
            if n_muls == WIDE16_FUSE {
                (suite.mul16_multi)(dst, &muls[..n_muls], wrote);
                wrote = true;
                n_muls = 0;
            }
        }
    }
    if n_muls > 0 {
        (suite.mul16_multi)(dst, &muls[..n_muls], wrote);
        wrote = true;
    }
    if n_ones > 0 {
        (suite.xor_multi)(dst, &ones[..n_ones], wrote);
        wrote = true;
    }
    if !wrote {
        dst.fill(0);
    }
}

/// Panics unless `len` is a whole number of `F` symbols.
fn check_symbol_multiple<F: Field>(len: usize) {
    assert_eq!(
        len % F::SYMBOL_BYTES,
        0,
        "payload not a whole number of symbols"
    );
}
// xlint::hot-path(payload-ops) end

/// Converts a byte payload into field symbols (little-endian packing).
///
/// The payload length must be a multiple of `F::SYMBOL_BYTES`.
pub fn bytes_to_symbols<F: Field>(bytes: &[u8]) -> Vec<F> {
    check_symbol_multiple::<F>(bytes.len());
    bytes
        .chunks_exact(F::SYMBOL_BYTES)
        .map(F::read_symbol)
        .collect()
}

/// Converts field symbols back into a byte payload.
pub fn symbols_to_bytes<F: Field>(symbols: &[F]) -> Vec<u8> {
    let mut out = vec![0u8; symbols.len() * F::SYMBOL_BYTES];
    for (chunk, s) in out.chunks_exact_mut(F::SYMBOL_BYTES).zip(symbols) {
        s.write_symbol(chunk);
    }
    out
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)] // tests index fixture data freely
mod tests {
    use super::*;
    use crate::{Gf16, Gf65536};
    use proptest::prelude::*;

    #[test]
    fn xor_into_is_involutive() {
        let a0 = vec![1u8, 2, 3, 250];
        let b = vec![9u8, 8, 7, 255];
        let mut a = a0.clone();
        xor_into(&mut a, &b);
        xor_into(&mut a, &b);
        assert_eq!(a, a0);
    }

    #[test]
    fn mul_into_by_one_copies_and_zero_clears() {
        let src = vec![5u8, 0, 77, 128];
        let mut dst = vec![1u8; 4];
        mul_into(&mut dst, &src, Gf256::ONE);
        assert_eq!(dst, src);
        mul_into(&mut dst, &src, Gf256::ZERO);
        assert_eq!(dst, vec![0u8; 4]);
    }

    #[test]
    #[should_panic(expected = "payload length mismatch")]
    fn mismatched_lengths_panic() {
        let mut dst = vec![0u8; 3];
        xor_into(&mut dst, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "payload length mismatch")]
    fn mismatched_multi_lengths_panic() {
        let mut dst = vec![0u8; 3];
        let a = [1u8, 2, 3];
        let b = [4u8, 5];
        mul_acc_multi(&mut dst, &[(Gf256::ONE, &a), (Gf256::ONE, &b)]);
    }

    #[test]
    fn product_row_matches_field_multiplication() {
        let c = Gf256::from_index(0x8E);
        let row = product_row(c);
        for x in 0..256u32 {
            assert_eq!(row[x as usize], (c * Gf256::from_index(x)).raw());
        }
    }

    #[test]
    fn active_backend_is_supported() {
        let b = KernelBackend::active();
        assert!(b.is_supported());
        assert!(KernelBackend::supported().any(|s| s == b));
        assert_eq!(KernelBackend::parse(b.name()), Some(b));
    }

    #[test]
    fn mul_into_multi_with_no_live_sources_zero_fills() {
        let mut dst = vec![0xAAu8; 9];
        mul_into_multi(&mut dst, &[]);
        assert_eq!(dst, vec![0u8; 9]);
        let src = vec![7u8; 9];
        let mut dst = vec![0xAAu8; 9];
        mul_into_multi(&mut dst, &[(Gf256::ZERO, &src)]);
        assert_eq!(dst, vec![0u8; 9]);
    }

    #[test]
    fn mul_acc_multi_matches_mul_acc_loop_over_many_sources() {
        // More sources than MAX_FUSE forces batching; mixed zero, one,
        // and general coefficients exercise all three partitions.
        let n = 4097; // not a multiple of any vector width
        let srcs: Vec<Vec<u8>> = (0..40)
            .map(|i| {
                (0..n)
                    .map(|j| ((i * 89 + j * 13 + 5) % 256) as u8)
                    .collect()
            })
            .collect();
        let coeffs: Vec<Gf256> = (0..40).map(|i| Gf256::from_index(i * 7 % 256)).collect();
        let mut fused = vec![0x5Au8; n];
        let mut looped = fused.clone();
        let pairs: Vec<(Gf256, &[u8])> = coeffs
            .iter()
            .zip(&srcs)
            .map(|(&c, s)| (c, s.as_slice()))
            .collect();
        mul_acc_multi(&mut fused, &pairs);
        for (c, s) in &pairs {
            mul_acc(&mut looped, s, *c);
        }
        assert_eq!(fused, looped);
    }

    #[test]
    fn gf16_payload_kernels_truncate_source_bytes() {
        // GF(2^4) symbols occupy a whole byte; source bytes are truncated
        // to the field exactly like `from_index`, so a dirty high nibble
        // in the source must not leak into the product.
        let c = Gf16::new(0x7);
        let src = [0xF3u8, 0x0A, 0x90];
        let mut dst = [0u8; 3];
        payload_mul_into(&mut dst, &src, c);
        for (d, s) in dst.iter().zip(src) {
            assert_eq!(*d, (c * Gf16::new(s & 0xF)).raw());
        }
        // ONE is not a raw-XOR shortcut for sub-byte fields.
        let mut dst = [0u8; 3];
        payload_mul_into(&mut dst, &src, Gf16::ONE);
        assert_eq!(dst, [0x3, 0xA, 0x0]);
    }

    #[test]
    fn symbol_round_trip_gf65536() {
        let bytes: Vec<u8> = (0..64u8).collect();
        let syms: Vec<Gf65536> = bytes_to_symbols(&bytes);
        assert_eq!(syms.len(), 32);
        assert_eq!(symbols_to_bytes(&syms), bytes);
    }

    #[test]
    fn symbol_round_trip_gf16_one_byte_per_symbol() {
        // GF(2^4) symbols occupy a whole byte (upper nibble unused on
        // write, masked on read via from_index semantics in the codec).
        let syms = vec![Gf16::new(0xA), Gf16::new(0x3)];
        let bytes = symbols_to_bytes(&syms);
        assert_eq!(bytes, vec![0xA, 0x3]);
        assert_eq!(bytes_to_symbols::<Gf16>(&bytes), syms);
    }

    proptest! {
        #[test]
        fn mul_acc_matches_scalar_loop(
            data in proptest::collection::vec(any::<u8>(), 0..512),
            src in proptest::collection::vec(any::<u8>(), 0..512),
            c in 0u32..256,
        ) {
            let n = data.len().min(src.len());
            let c = Gf256::from_index(c);
            let mut fast = data[..n].to_vec();
            mul_acc(&mut fast, &src[..n], c);
            let slow: Vec<u8> = data[..n]
                .iter()
                .zip(&src[..n])
                .map(|(&d, &s)| (Gf256::new(d) + c * Gf256::new(s)).raw())
                .collect();
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn scale_matches_scalar_loop(
            data in proptest::collection::vec(any::<u8>(), 0..512),
            c in 0u32..256,
        ) {
            let c = Gf256::from_index(c);
            let mut fast = data.clone();
            scale(&mut fast, c);
            let slow: Vec<u8> =
                data.iter().map(|&d| (c * Gf256::new(d)).raw()).collect();
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn payload_mul_acc_gf256_matches_specialized(
            data in proptest::collection::vec(any::<u8>(), 0..256),
            src in proptest::collection::vec(any::<u8>(), 0..256),
            c in 0u32..256,
        ) {
            let n = data.len().min(src.len());
            let c = Gf256::from_index(c);
            let mut generic = data[..n].to_vec();
            payload_mul_acc(&mut generic, &src[..n], c);
            let mut specialized = data[..n].to_vec();
            mul_acc(&mut specialized, &src[..n], c);
            prop_assert_eq!(generic, specialized);
        }

        #[test]
        fn payload_mul_into_matches_mul_into_gf256(
            data in proptest::collection::vec(any::<u8>(), 0..256),
            src in proptest::collection::vec(any::<u8>(), 0..256),
            c in 0u32..256,
        ) {
            let n = data.len().min(src.len());
            let c = Gf256::from_index(c);
            let mut generic = data[..n].to_vec();
            payload_mul_into(&mut generic, &src[..n], c);
            let mut specialized = data[..n].to_vec();
            mul_into(&mut specialized, &src[..n], c);
            prop_assert_eq!(generic, specialized);
        }

        #[test]
        fn payload_mul_into_matches_acc_over_zeroed_gf65536(
            src in proptest::collection::vec(any::<u8>(), 0..64),
            c in 0u32..65536,
        ) {
            let n = (src.len() / 2) * 2;
            let c = Gf65536::from_index(c);
            let mut direct = vec![0xFFu8; n]; // stale contents must not leak
            payload_mul_into(&mut direct, &src[..n], c);
            let mut acc = vec![0u8; n];
            payload_mul_acc(&mut acc, &src[..n], c);
            prop_assert_eq!(direct, acc);
        }

        #[test]
        fn payload_mul_acc_gf65536_matches_symbol_ops(
            data in proptest::collection::vec(any::<u8>(), 0..64),
            src in proptest::collection::vec(any::<u8>(), 0..64),
            c in 0u32..65536,
        ) {
            let n = (data.len().min(src.len()) / 2) * 2;
            let c = Gf65536::from_index(c);
            let mut bytes = data[..n].to_vec();
            payload_mul_acc(&mut bytes, &src[..n], c);

            let mut syms: Vec<Gf65536> = bytes_to_symbols(&data[..n]);
            let src_syms: Vec<Gf65536> = bytes_to_symbols(&src[..n]);
            gf_mul_acc(&mut syms, &src_syms, c);
            prop_assert_eq!(bytes, symbols_to_bytes(&syms));
        }

        #[test]
        fn payload_scale_matches_scale(
            data in proptest::collection::vec(any::<u8>(), 0..128),
            c in 0u32..256,
        ) {
            let c = Gf256::from_index(c);
            let mut generic = data.clone();
            payload_scale(&mut generic, c);
            let mut specialized = data;
            scale(&mut specialized, c);
            prop_assert_eq!(generic, specialized);
        }

        #[test]
        fn payload_scale_gf65536_matches_symbol_ops(
            data in proptest::collection::vec(any::<u8>(), 0..64),
            c in 0u32..65536,
        ) {
            let n = (data.len() / 2) * 2;
            let c = Gf65536::from_index(c);
            let mut bytes = data[..n].to_vec();
            payload_scale(&mut bytes, c);
            let mut syms: Vec<Gf65536> = bytes_to_symbols(&data[..n]);
            gf_scale(&mut syms, c);
            prop_assert_eq!(bytes, symbols_to_bytes(&syms));
        }

        #[test]
        fn gf_mul_acc_matches_bytewise_gf256(
            data in proptest::collection::vec(any::<u8>(), 0..256),
            src in proptest::collection::vec(any::<u8>(), 0..256),
            c in 0u32..256,
        ) {
            let n = data.len().min(src.len());
            let c = Gf256::from_index(c);
            let mut bytes = data[..n].to_vec();
            mul_acc(&mut bytes, &src[..n], c);

            let mut syms: Vec<Gf256> = data[..n].iter().map(|&b| Gf256::new(b)).collect();
            let src_syms: Vec<Gf256> = src[..n].iter().map(|&b| Gf256::new(b)).collect();
            gf_mul_acc(&mut syms, &src_syms, c);
            let sym_bytes: Vec<u8> = syms.iter().map(|s| s.raw()).collect();
            prop_assert_eq!(bytes, sym_bytes);
        }

        #[test]
        fn payload_mul_acc_multi_gf65536_matches_loop(
            data in proptest::collection::vec(any::<u8>(), 0..96),
            srcs in proptest::collection::vec(
                (0u32..65536, proptest::collection::vec(any::<u8>(), 96..97)),
                0..12,
            ),
        ) {
            let n = (data.len() / 2) * 2;
            let pairs: Vec<(Gf65536, &[u8])> = srcs
                .iter()
                .map(|(c, s)| (Gf65536::from_index(*c), &s[..n]))
                .collect();
            let mut fused = data[..n].to_vec();
            payload_mul_acc_multi(&mut fused, &pairs);
            let mut looped = data[..n].to_vec();
            for (c, s) in &pairs {
                payload_mul_acc(&mut looped, s, *c);
            }
            prop_assert_eq!(fused, looped);
        }
    }
}
