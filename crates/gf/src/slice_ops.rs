//! Bulk kernels over block payloads.
//!
//! Erasure coding a 64 MB HDFS block is a long stream of
//! `dst ^= c * src` operations over GF(2^8) bytes. These kernels are the
//! hot path of the codecs: [`mul_acc`] builds a 256-entry product row for
//! the coefficient once and then streams through the payload, which the
//! optimizer auto-vectorizes well.
//!
//! Generic symbol-slice variants (`gf_*`) are provided for matrices and
//! codecs instantiated over other fields.

use crate::{Field, Gf256};

/// `dst[i] ^= src[i]` for all `i`. Panics if lengths differ.
///
/// This is the entirety of the paper's *light decoder* arithmetic: local
/// parities use coefficients `c_i = 1`, so single-failure repair "performs
/// a simple XOR" (§3.1.2).
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "payload length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// The product row of a coefficient: `row[x] = c * x` for every byte `x`.
#[inline]
pub fn product_row(c: Gf256) -> [u8; 256] {
    let mut row = [0u8; 256];
    for (x, slot) in row.iter_mut().enumerate() {
        *slot = (c * Gf256::new(x as u8)).raw();
    }
    row
}

/// `dst[i] = c * src[i]` for all `i`. Panics if lengths differ.
pub fn mul_into(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "payload length mismatch");
    if c == Gf256::ZERO {
        dst.fill(0);
        return;
    }
    if c == Gf256::ONE {
        dst.copy_from_slice(src);
        return;
    }
    let row = product_row(c);
    for (d, s) in dst.iter_mut().zip(src) {
        *d = row[*s as usize];
    }
}

/// `dst[i] ^= c * src[i]` for all `i`. Panics if lengths differ.
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "payload length mismatch");
    if c == Gf256::ZERO {
        return;
    }
    if c == Gf256::ONE {
        xor_into(dst, src);
        return;
    }
    let row = product_row(c);
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= row[*s as usize];
    }
}

/// In-place scaling: `data[i] *= c`.
pub fn scale(data: &mut [u8], c: Gf256) {
    if c == Gf256::ONE {
        return;
    }
    if c == Gf256::ZERO {
        data.fill(0);
        return;
    }
    let row = product_row(c);
    for d in data.iter_mut() {
        *d = row[*d as usize];
    }
}

/// Generic-field variant of [`xor_into`] over symbol slices.
pub fn gf_add_assign<F: Field>(dst: &mut [F], src: &[F]) {
    assert_eq!(dst.len(), src.len(), "symbol length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d += *s;
    }
}

/// Generic-field variant of [`mul_acc`] over symbol slices.
pub fn gf_mul_acc<F: Field>(dst: &mut [F], src: &[F], c: F) {
    assert_eq!(dst.len(), src.len(), "symbol length mismatch");
    if c.is_zero() {
        return;
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d += *s * c;
    }
}

/// Generic-field variant of [`scale`] over symbol slices.
pub fn gf_scale<F: Field>(data: &mut [F], c: F) {
    for d in data.iter_mut() {
        *d *= c;
    }
}

/// `dst = c * src` over *byte payloads* for any field.
///
/// The overwrite counterpart of [`payload_mul_acc`]: encode and compiled
/// repair steps start each output lane with this, skipping the zero-fill
/// pass an accumulate-only kernel would need. For 8-bit fields this uses
/// the product-row fast path directly on the bytes; for wider fields the
/// payload is processed `SYMBOL_BYTES` at a time (its length must then
/// be a multiple of the symbol width).
pub fn payload_mul_into<F: Field>(dst: &mut [u8], src: &[u8], c: F) {
    assert_eq!(dst.len(), src.len(), "payload length mismatch");
    if c.is_zero() {
        dst.fill(0);
        return;
    }
    if c == F::ONE {
        dst.copy_from_slice(src);
        return;
    }
    if F::BITS == 8 {
        let mut row = [0u8; 256];
        for (x, slot) in row.iter_mut().enumerate() {
            *slot = (c * F::from_index(x as u32)).index() as u8;
        }
        for (d, s) in dst.iter_mut().zip(src) {
            *d = row[*s as usize];
        }
        return;
    }
    let b = F::SYMBOL_BYTES;
    assert_eq!(dst.len() % b, 0, "payload not a whole number of symbols");
    for (dc, sc) in dst.chunks_exact_mut(b).zip(src.chunks_exact(b)) {
        (c * F::read_symbol(sc)).write_symbol(dc);
    }
}

/// `dst ^= c * src` over *byte payloads* for any field.
///
/// For 8-bit fields this uses the product-row fast path directly on the
/// bytes; for wider fields the payload is processed `SYMBOL_BYTES` at a
/// time (its length must then be a multiple of the symbol width).
pub fn payload_mul_acc<F: Field>(dst: &mut [u8], src: &[u8], c: F) {
    assert_eq!(dst.len(), src.len(), "payload length mismatch");
    if c.is_zero() {
        return;
    }
    if F::BITS == 8 {
        if c == F::ONE {
            xor_into(dst, src);
            return;
        }
        let mut row = [0u8; 256];
        for (x, slot) in row.iter_mut().enumerate() {
            *slot = (c * F::from_index(x as u32)).index() as u8;
        }
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= row[*s as usize];
        }
        return;
    }
    let b = F::SYMBOL_BYTES;
    assert_eq!(dst.len() % b, 0, "payload not a whole number of symbols");
    for (dc, sc) in dst.chunks_exact_mut(b).zip(src.chunks_exact(b)) {
        let v = F::read_symbol(dc) + c * F::read_symbol(sc);
        v.write_symbol(dc);
    }
}

/// In-place byte-payload scaling `data *= c` for any field.
pub fn payload_scale<F: Field>(data: &mut [u8], c: F) {
    if c == F::ONE {
        return;
    }
    if c.is_zero() {
        data.fill(0);
        return;
    }
    if F::BITS == 8 {
        let mut row = [0u8; 256];
        for (x, slot) in row.iter_mut().enumerate() {
            *slot = (c * F::from_index(x as u32)).index() as u8;
        }
        for d in data.iter_mut() {
            *d = row[*d as usize];
        }
        return;
    }
    let b = F::SYMBOL_BYTES;
    assert_eq!(data.len() % b, 0, "payload not a whole number of symbols");
    for dc in data.chunks_exact_mut(b) {
        let v = F::read_symbol(dc) * c;
        v.write_symbol(dc);
    }
}

/// Converts a byte payload into field symbols (little-endian packing).
///
/// The payload length must be a multiple of `F::SYMBOL_BYTES`.
pub fn bytes_to_symbols<F: Field>(bytes: &[u8]) -> Vec<F> {
    assert_eq!(
        bytes.len() % F::SYMBOL_BYTES,
        0,
        "payload not a whole number of symbols"
    );
    bytes
        .chunks_exact(F::SYMBOL_BYTES)
        .map(F::read_symbol)
        .collect()
}

/// Converts field symbols back into a byte payload.
pub fn symbols_to_bytes<F: Field>(symbols: &[F]) -> Vec<u8> {
    let mut out = vec![0u8; symbols.len() * F::SYMBOL_BYTES];
    for (chunk, s) in out.chunks_exact_mut(F::SYMBOL_BYTES).zip(symbols) {
        s.write_symbol(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf16, Gf65536};
    use proptest::prelude::*;

    #[test]
    fn xor_into_is_involutive() {
        let a0 = vec![1u8, 2, 3, 250];
        let b = vec![9u8, 8, 7, 255];
        let mut a = a0.clone();
        xor_into(&mut a, &b);
        xor_into(&mut a, &b);
        assert_eq!(a, a0);
    }

    #[test]
    fn mul_into_by_one_copies_and_zero_clears() {
        let src = vec![5u8, 0, 77, 128];
        let mut dst = vec![1u8; 4];
        mul_into(&mut dst, &src, Gf256::ONE);
        assert_eq!(dst, src);
        mul_into(&mut dst, &src, Gf256::ZERO);
        assert_eq!(dst, vec![0u8; 4]);
    }

    #[test]
    #[should_panic(expected = "payload length mismatch")]
    fn mismatched_lengths_panic() {
        let mut dst = vec![0u8; 3];
        xor_into(&mut dst, &[1, 2]);
    }

    #[test]
    fn symbol_round_trip_gf65536() {
        let bytes: Vec<u8> = (0..64u8).collect();
        let syms: Vec<Gf65536> = bytes_to_symbols(&bytes);
        assert_eq!(syms.len(), 32);
        assert_eq!(symbols_to_bytes(&syms), bytes);
    }

    #[test]
    fn symbol_round_trip_gf16_one_byte_per_symbol() {
        // GF(2^4) symbols occupy a whole byte (upper nibble unused on
        // write, masked on read via from_index semantics in the codec).
        let syms = vec![Gf16::new(0xA), Gf16::new(0x3)];
        let bytes = symbols_to_bytes(&syms);
        assert_eq!(bytes, vec![0xA, 0x3]);
        assert_eq!(bytes_to_symbols::<Gf16>(&bytes), syms);
    }

    proptest! {
        #[test]
        fn mul_acc_matches_scalar_loop(
            data in proptest::collection::vec(any::<u8>(), 0..512),
            src in proptest::collection::vec(any::<u8>(), 0..512),
            c in 0u32..256,
        ) {
            let n = data.len().min(src.len());
            let c = Gf256::from_index(c);
            let mut fast = data[..n].to_vec();
            mul_acc(&mut fast, &src[..n], c);
            let slow: Vec<u8> = data[..n]
                .iter()
                .zip(&src[..n])
                .map(|(&d, &s)| (Gf256::new(d) + c * Gf256::new(s)).raw())
                .collect();
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn scale_matches_scalar_loop(
            data in proptest::collection::vec(any::<u8>(), 0..512),
            c in 0u32..256,
        ) {
            let c = Gf256::from_index(c);
            let mut fast = data.clone();
            scale(&mut fast, c);
            let slow: Vec<u8> =
                data.iter().map(|&d| (c * Gf256::new(d)).raw()).collect();
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn payload_mul_acc_gf256_matches_specialized(
            data in proptest::collection::vec(any::<u8>(), 0..256),
            src in proptest::collection::vec(any::<u8>(), 0..256),
            c in 0u32..256,
        ) {
            let n = data.len().min(src.len());
            let c = Gf256::from_index(c);
            let mut generic = data[..n].to_vec();
            payload_mul_acc(&mut generic, &src[..n], c);
            let mut specialized = data[..n].to_vec();
            mul_acc(&mut specialized, &src[..n], c);
            prop_assert_eq!(generic, specialized);
        }

        #[test]
        fn payload_mul_into_matches_mul_into_gf256(
            data in proptest::collection::vec(any::<u8>(), 0..256),
            src in proptest::collection::vec(any::<u8>(), 0..256),
            c in 0u32..256,
        ) {
            let n = data.len().min(src.len());
            let c = Gf256::from_index(c);
            let mut generic = data[..n].to_vec();
            payload_mul_into(&mut generic, &src[..n], c);
            let mut specialized = data[..n].to_vec();
            mul_into(&mut specialized, &src[..n], c);
            prop_assert_eq!(generic, specialized);
        }

        #[test]
        fn payload_mul_into_matches_acc_over_zeroed_gf65536(
            src in proptest::collection::vec(any::<u8>(), 0..64),
            c in 0u32..65536,
        ) {
            let n = (src.len() / 2) * 2;
            let c = Gf65536::from_index(c);
            let mut direct = vec![0xFFu8; n]; // stale contents must not leak
            payload_mul_into(&mut direct, &src[..n], c);
            let mut acc = vec![0u8; n];
            payload_mul_acc(&mut acc, &src[..n], c);
            prop_assert_eq!(direct, acc);
        }

        #[test]
        fn payload_mul_acc_gf65536_matches_symbol_ops(
            data in proptest::collection::vec(any::<u8>(), 0..64),
            src in proptest::collection::vec(any::<u8>(), 0..64),
            c in 0u32..65536,
        ) {
            let n = (data.len().min(src.len()) / 2) * 2;
            let c = Gf65536::from_index(c);
            let mut bytes = data[..n].to_vec();
            payload_mul_acc(&mut bytes, &src[..n], c);

            let mut syms: Vec<Gf65536> = bytes_to_symbols(&data[..n]);
            let src_syms: Vec<Gf65536> = bytes_to_symbols(&src[..n]);
            gf_mul_acc(&mut syms, &src_syms, c);
            prop_assert_eq!(bytes, symbols_to_bytes(&syms));
        }

        #[test]
        fn payload_scale_matches_scale(
            data in proptest::collection::vec(any::<u8>(), 0..128),
            c in 0u32..256,
        ) {
            let c = Gf256::from_index(c);
            let mut generic = data.clone();
            payload_scale(&mut generic, c);
            let mut specialized = data;
            scale(&mut specialized, c);
            prop_assert_eq!(generic, specialized);
        }

        #[test]
        fn gf_mul_acc_matches_bytewise_gf256(
            data in proptest::collection::vec(any::<u8>(), 0..256),
            src in proptest::collection::vec(any::<u8>(), 0..256),
            c in 0u32..256,
        ) {
            let n = data.len().min(src.len());
            let c = Gf256::from_index(c);
            let mut bytes = data[..n].to_vec();
            mul_acc(&mut bytes, &src[..n], c);

            let mut syms: Vec<Gf256> = data[..n].iter().map(|&b| Gf256::new(b)).collect();
            let src_syms: Vec<Gf256> = src[..n].iter().map(|&b| Gf256::new(b)).collect();
            gf_mul_acc(&mut syms, &src_syms, c);
            let sym_bytes: Vec<u8> = syms.iter().map(|s| s.raw()).collect();
            prop_assert_eq!(bytes, sym_bytes);
        }
    }
}
