//! Shared log/antilog table construction.

/// Discrete-log and antilog tables for one field.
///
/// `exp` has length `2 * (q - 1)` (the second half repeats the first) so
/// that `exp[log a + log b]` needs no modular reduction. `log[0]` holds
/// `u32::MAX` as a sentinel.
pub(crate) struct RawTables {
    pub exp: Vec<u32>,
    pub log: Vec<u32>,
}

/// Builds tables for GF(2^bits) reduced by `poly` (which must include its
/// leading bit and have `x` primitive).
pub(crate) fn build_tables(poly: u32, bits: u32) -> RawTables {
    let q = 1usize << bits;
    let high = 1u32 << bits;
    let mut exp = vec![0u32; 2 * (q - 1)];
    let mut log = vec![u32::MAX; q];
    let mut v = 1u32;
    #[allow(clippy::needless_range_loop)] // e is the exponent, not just an index
    for e in 0..(q - 1) {
        exp[e] = v;
        assert_eq!(
            log[v as usize],
            u32::MAX,
            "x is not primitive for {poly:#x}"
        );
        log[v as usize] = e as u32;
        v <<= 1;
        if v & high != 0 {
            v ^= poly;
        }
    }
    for e in 0..(q - 1) {
        exp[q - 1 + e] = exp[e];
    }
    RawTables { exp, log }
}

/// Generates a concrete field type backed by lazily built tables.
macro_rules! impl_table_field {
    (
        $(#[$meta:meta])*
        $name:ident, $repr:ty, $bits:expr, $poly:expr
    ) => {
        $(#[$meta])*
        #[derive(Copy, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
        pub struct $name($repr);

        impl $name {
            const Q: u32 = 1u32 << $bits;
            const MASK: u32 = (1u32 << $bits) - 1;

            fn tables() -> &'static crate::tables::RawTables {
                static TABLES: std::sync::LazyLock<crate::tables::RawTables> =
                    std::sync::LazyLock::new(|| crate::tables::build_tables($poly, $bits));
                &TABLES
            }

            /// Creates an element from its raw representation.
            #[inline]
            pub const fn new(v: $repr) -> Self {
                Self(v)
            }

            /// The raw representation of this element.
            #[inline]
            pub const fn raw(self) -> $repr {
                self.0
            }
        }

        impl crate::Field for $name {
            const ZERO: Self = Self(0);
            const ONE: Self = Self(1);
            const ORDER: u32 = Self::Q;
            const BITS: u32 = $bits;
            const SYMBOL_BYTES: usize = std::mem::size_of::<$repr>();

            #[inline]
            fn from_index(v: u32) -> Self {
                Self((v & Self::MASK) as $repr)
            }

            #[inline]
            fn index(self) -> u32 {
                u32::from(self.0)
            }

            #[inline]
            fn inv(self) -> Option<Self> {
                if self.0 == 0 {
                    return None;
                }
                let t = Self::tables();
                let e = t.log[self.0 as usize];
                Some(Self(t.exp[(Self::Q - 1 - e) as usize] as $repr))
            }

            #[inline]
            fn generator() -> Self {
                Self(0b10)
            }

            #[inline]
            fn exp(e: u32) -> Self {
                let t = Self::tables();
                Self(t.exp[(e % (Self::Q - 1)) as usize] as $repr)
            }

            #[inline]
            fn log(self) -> Option<u32> {
                if self.0 == 0 {
                    None
                } else {
                    Some(Self::tables().log[self.0 as usize])
                }
            }

            #[inline]
            fn read_symbol(bytes: &[u8]) -> Self {
                let mut buf = [0u8; std::mem::size_of::<$repr>()];
                buf.copy_from_slice(&bytes[..std::mem::size_of::<$repr>()]);
                // Sub-byte fields (GF(2^4)) occupy a whole byte per
                // symbol; out-of-range bits are truncated, mirroring
                // `from_index`.
                Self((<$repr>::from_le_bytes(buf) as u32 & Self::MASK) as $repr)
            }

            #[inline]
            fn write_symbol(self, bytes: &mut [u8]) {
                bytes[..std::mem::size_of::<$repr>()]
                    .copy_from_slice(&self.0.to_le_bytes());
            }
        }

        #[allow(clippy::suspicious_arithmetic_impl)]
        impl std::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 ^ rhs.0)
            }
        }

        #[allow(clippy::suspicious_arithmetic_impl)]
        impl std::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 ^ rhs.0)
            }
        }

        impl std::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                self
            }
        }

        impl std::ops::Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                if self.0 == 0 || rhs.0 == 0 {
                    return Self(0);
                }
                let t = Self::tables();
                let e = t.log[self.0 as usize] + t.log[rhs.0 as usize];
                Self(t.exp[e as usize] as $repr)
            }
        }

        #[allow(clippy::suspicious_arithmetic_impl)]
        impl std::ops::Div for $name {
            type Output = Self;
            /// Panics when dividing by zero, mirroring integer division.
            #[inline]
            fn div(self, rhs: Self) -> Self {
                match crate::Field::inv(rhs) {
                    Some(inv) => self * inv,
                    // `inv` is `None` exactly when `rhs` is zero: raise
                    // the native divide-by-zero panic, same as integers.
                    None => Self(self.0 / rhs.0),
                }
            }
        }

        #[allow(clippy::suspicious_op_assign_impl)]
        impl std::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 ^= rhs.0;
            }
        }

        #[allow(clippy::suspicious_op_assign_impl)]
        impl std::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 ^= rhs.0;
            }
        }

        impl std::ops::MulAssign for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self(0), |a, b| a + b)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl From<$repr> for $name {
            #[inline]
            fn from(v: $repr) -> Self {
                Self(v)
            }
        }
    };
}

pub(crate) use impl_table_field;
