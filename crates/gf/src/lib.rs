//! Binary-extension-field arithmetic for erasure coding.
//!
//! The codes in "XORing Elephants" (VLDB 2013) are defined over binary
//! extension fields `F_{2^m}` (§2.1, Appendix D). This crate provides
//! table-driven implementations of GF(2^4), GF(2^8) and GF(2^16), a common
//! [`Field`] trait used by the linear-algebra and codec crates, and
//! byte-slice kernels ([`slice_ops`]) used on whole-block payloads.
//!
//! # Representation
//!
//! Elements are bit patterns of polynomials over GF(2) reduced modulo a
//! fixed primitive polynomial (see [`poly`] for the registry). Addition is
//! XOR; multiplication uses discrete log/antilog tables with `x` (`0b10`)
//! as the primitive element `α`, matching the Vandermonde parity-check
//! construction `[H]_{i,j} = α^{(i-1)(j-1)}` of the paper's Appendix D.
//!
//! Payload-slice kernels dispatch at runtime to SIMD implementations
//! (split-nibble `PSHUFB`/`VPSHUFB` on x86) with a portable scalar
//! fallback — see the [`slice_ops`] module docs for the selection story,
//! and the repository's `docs/ARCHITECTURE.md` for the
//! `XORBAS_KERNEL_BACKEND` / `XORBAS_FORCE_SCALAR` override knobs.
//!
//! # Module map (paper section → module)
//!
//! | Paper | Module | What it provides |
//! |---|---|---|
//! | §2.1 / App. D field | [`Gf256`], [`Gf16`], [`Gf65536`] | the concrete `F_{2^m}` element types |
//! | App. D `α^{ij}` tables | [`poly`] | primitive-polynomial registry behind the log/antilog tables |
//! | §3.1.2 block XOR/scale | [`slice_ops`] | whole-payload kernels (fused rows, runtime SIMD dispatch) |
//! | — | [`KernelBackend`] | per-backend kernel access for tests/benches |
//!
//! This crate is the bottom of the workspace: `xorbas_linalg` builds its
//! matrices over [`Field`], `xorbas_core` encodes/repairs payloads
//! through [`slice_ops`], and `xorbas_sim` inherits both transitively.
//!
//! # Example
//!
//! ```
//! use xorbas_gf::{Field, Gf256};
//!
//! let a = Gf256::from_index(0x53);
//! let b = Gf256::from_index(0xCA);
//! let p = a * b;
//! assert_eq!(p / b, a);
//! assert_eq!(a + a, Gf256::ZERO); // characteristic 2
//! ```

// `unsafe` is denied crate-wide and re-allowed in exactly one place: the
// `simd` module, whose feature-gated kernels document their invariants
// and are reachable only through detection-checked dispatch.
#![deny(unsafe_code)]
#![warn(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod field;
mod gf16;
mod gf256;
mod gf65536;
pub mod poly;
mod simd;
pub mod slice_ops;
mod tables;

pub use field::{Field, FieldElements};
pub use gf16::Gf16;
pub use gf256::Gf256;
pub use gf65536::Gf65536;
pub use simd::KernelBackend;
