//! The [`Field`] trait shared by all GF(2^m) implementations.

use std::fmt::{Debug, Display};
use std::hash::Hash;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A binary extension field `F_{2^m}`.
///
/// All implementations in this crate have characteristic 2, so `a + a = 0`,
/// subtraction equals addition, and negation is the identity. Elements are
/// identified with the integers `0..ORDER` via their polynomial bit pattern
/// ([`Field::index`] / [`Field::from_index`]).
pub trait Field:
    Copy
    + Eq
    + Hash
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Field size `q = 2^BITS`.
    const ORDER: u32;
    /// Extension degree `m`.
    const BITS: u32;
    /// Number of bytes a symbol occupies in serialized block payloads.
    const SYMBOL_BYTES: usize;

    /// Builds an element from its bit-pattern index (truncated to `BITS`).
    fn from_index(v: u32) -> Self;

    /// The bit-pattern index of this element, in `0..ORDER`.
    fn index(self) -> u32;

    /// Multiplicative inverse; `None` for zero.
    fn inv(self) -> Option<Self>;

    /// The canonical primitive element `α` (the polynomial `x`).
    fn generator() -> Self;

    /// `α^e`; the exponent may be any `u32` and is reduced mod `ORDER - 1`.
    fn exp(e: u32) -> Self;

    /// Discrete logarithm base `α`; `None` for zero.
    fn log(self) -> Option<u32>;

    /// Whether this element is zero.
    #[inline]
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Checked division: `None` when `rhs` is zero.
    #[inline]
    fn checked_div(self, rhs: Self) -> Option<Self> {
        rhs.inv().map(|r| self * r)
    }

    /// Exponentiation by squaring (works for any exponent, including 0).
    fn pow(self, mut e: u64) -> Self {
        if e == 0 {
            return Self::ONE;
        }
        if self.is_zero() {
            return Self::ZERO;
        }
        let mut base = self;
        let mut acc = Self::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// Iterates over every element of the field, starting with zero.
    fn elements() -> FieldElements<Self> {
        FieldElements {
            next: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Reads a symbol from the first `SYMBOL_BYTES` bytes (little-endian).
    fn read_symbol(bytes: &[u8]) -> Self;

    /// Writes a symbol into the first `SYMBOL_BYTES` bytes (little-endian).
    fn write_symbol(self, bytes: &mut [u8]);
}

/// Iterator over all elements of a field, yielded in index order.
#[derive(Debug, Clone)]
pub struct FieldElements<F> {
    next: u64,
    _marker: std::marker::PhantomData<F>,
}

impl<F: Field> Iterator for FieldElements<F> {
    type Item = F;

    fn next(&mut self) -> Option<F> {
        if self.next >= u64::from(F::ORDER) {
            return None;
        }
        let v = F::from_index(self.next as u32);
        self.next += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (u64::from(F::ORDER) - self.next) as usize;
        (rem, Some(rem))
    }
}

impl<F: Field> ExactSizeIterator for FieldElements<F> {}
