//! SIMD/scalar bit-identity for every byte kernel, on every backend the
//! running CPU supports, across adversarial payload shapes: empty
//! slices, lengths below one vector, lengths that are not a multiple of
//! any vector width, and misaligned sub-slices. The scalar backend is
//! the reference; the fused multi-source kernels are additionally
//! checked against a loop of their single-source counterparts. The
//! GF(2^16) lanes pin the nibble-table `PSHUFB`/`VPSHUFB` kernels
//! against the scalar split-table path (and a symbol-at-a-time field
//! reference) on the same adversarial shapes, two-byte-symbol edition:
//! even lengths straddling the 32/64-byte vector blocks, with
//! `&buf[1..]` misaligning every vector load.

use proptest::prelude::*;
use xorbas_gf::slice_ops::{self, KernelBackend};
use xorbas_gf::{Field, Gf256, Gf65536};

/// Payload lengths chosen to straddle every kernel boundary: empty, a
/// lone byte, just under/over the 16-byte SSSE3 and 32-byte AVX2 vector
/// widths, an odd prime, and a few vectors plus a ragged tail.
const ADVERSARIAL_LENS: [usize; 12] = [0, 1, 7, 15, 16, 17, 31, 32, 33, 97, 128, 1000];

/// Deterministic pseudo-random payload, distinct per (seed, len).
fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

fn backends() -> Vec<KernelBackend> {
    let all: Vec<KernelBackend> = KernelBackend::supported().collect();
    assert!(all.contains(&KernelBackend::Scalar));
    all
}

#[test]
fn single_source_kernels_match_scalar_on_adversarial_shapes() {
    let coeffs = [0u32, 1, 2, 0x1D, 0x8E, 255];
    for backend in backends() {
        for &len in &ADVERSARIAL_LENS {
            // One leading byte so `&buf[1..]` misaligns every vector.
            let src_buf = payload(len as u64 + 1, len + 1);
            let dst_buf = payload(len as u64 + 1000, len + 1);
            let src = &src_buf[1..];
            for &ci in &coeffs {
                let c = Gf256::from_index(ci);

                let mut got = dst_buf[1..].to_vec();
                backend.mul_acc(&mut got, src, c);
                let mut want = dst_buf[1..].to_vec();
                KernelBackend::Scalar.mul_acc(&mut want, src, c);
                assert_eq!(got, want, "{backend:?} mul_acc len {len} c {ci}");

                let mut got = dst_buf[1..].to_vec();
                backend.mul_into(&mut got, src, c);
                let mut want = dst_buf[1..].to_vec();
                KernelBackend::Scalar.mul_into(&mut want, src, c);
                assert_eq!(got, want, "{backend:?} mul_into len {len} c {ci}");

                let mut got = dst_buf[1..].to_vec();
                backend.scale(&mut got, c);
                let mut want = dst_buf[1..].to_vec();
                KernelBackend::Scalar.scale(&mut want, c);
                assert_eq!(got, want, "{backend:?} scale len {len} c {ci}");
            }
            let mut got = dst_buf[1..].to_vec();
            backend.xor_into(&mut got, src);
            let mut want = dst_buf[1..].to_vec();
            KernelBackend::Scalar.xor_into(&mut want, src);
            assert_eq!(got, want, "{backend:?} xor_into len {len}");
        }
    }
}

#[test]
fn mul_acc_multi_matches_a_loop_of_mul_acc_on_every_backend() {
    // 0, 1, and MAX_FUSE-straddling source counts; coefficient mix of
    // zero (dropped), one (XOR partition), and general values.
    for backend in backends() {
        for &len in &ADVERSARIAL_LENS {
            for n_srcs in [0usize, 1, 2, 5, 16, 17, 35] {
                let srcs: Vec<Vec<u8>> = (0..n_srcs)
                    .map(|i| payload((i * 7 + 3) as u64, len + 1))
                    .collect();
                let pairs: Vec<(Gf256, &[u8])> = srcs
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (Gf256::from_index((i as u32 * 37) % 256), &s[1..]))
                    .collect();
                let dst0 = payload(99, len + 1)[1..].to_vec();

                let mut fused = dst0.clone();
                backend.mul_acc_multi(&mut fused, &pairs);
                let mut looped = dst0.clone();
                for &(c, s) in &pairs {
                    KernelBackend::Scalar.mul_acc(&mut looped, s, c);
                }
                assert_eq!(fused, looped, "{backend:?} acc_multi len {len} n {n_srcs}");

                let mut fused_into = dst0.clone();
                backend.mul_into_multi(&mut fused_into, &pairs);
                let mut looped_into = vec![0u8; len];
                for &(c, s) in &pairs {
                    KernelBackend::Scalar.mul_acc(&mut looped_into, s, c);
                }
                assert_eq!(
                    fused_into, looped_into,
                    "{backend:?} into_multi len {len} n {n_srcs}"
                );
            }
        }
    }
}

#[test]
fn xor_into_multi_matches_a_loop_of_xor_into_on_every_backend() {
    for backend in backends() {
        for &len in &ADVERSARIAL_LENS {
            for n_srcs in [0usize, 1, 3, 16, 17] {
                let srcs: Vec<Vec<u8>> = (0..n_srcs)
                    .map(|i| payload((i + 11) as u64, len + 1))
                    .collect();
                let refs: Vec<&[u8]> = srcs.iter().map(|s| &s[1..]).collect();
                let dst0 = payload(7, len + 1)[1..].to_vec();

                let mut fused = dst0.clone();
                backend.xor_into_multi(&mut fused, &refs);
                let mut looped = dst0.clone();
                for s in &refs {
                    KernelBackend::Scalar.xor_into(&mut looped, s);
                }
                assert_eq!(fused, looped, "{backend:?} xor_multi len {len} n {n_srcs}");
            }
        }
    }
}

#[test]
fn module_level_kernels_agree_with_the_active_backend() {
    let active = KernelBackend::active();
    let src = payload(5, 777);
    let mut via_module = payload(6, 777);
    let mut via_backend = via_module.clone();
    let c = Gf256::from_index(0xB7);
    slice_ops::mul_acc(&mut via_module, &src, c);
    active.mul_acc(&mut via_backend, &src, c);
    assert_eq!(via_module, via_backend);
}

#[test]
fn unsupported_backends_fall_back_to_scalar_results() {
    // Even if a backend is unsupported on this CPU, calling it must be
    // safe and bit-identical (it silently runs the scalar suite).
    let src = payload(1, 100);
    let c = Gf256::from_index(0x53);
    let mut want = payload(2, 100);
    KernelBackend::Scalar.mul_acc(&mut want, &src, c);
    for backend in KernelBackend::ALL {
        let mut got = payload(2, 100);
        backend.mul_acc(&mut got, &src, c);
        assert_eq!(got, want, "{backend:?}");
    }
}

/// Even payload lengths straddling every GF(2^16) kernel boundary:
/// empty, one symbol, just under/over the 32-byte SSSE3 and 64-byte
/// AVX2 symbol blocks, and a long non-multiple tail.
const ADVERSARIAL_LENS16: [usize; 11] = [0, 2, 6, 30, 32, 34, 62, 64, 66, 94, 1000];

#[test]
fn gf65536_single_source_kernels_match_scalar_on_adversarial_shapes() {
    // Coefficient mix: zero (early-out), one (XOR/copy shortcut), the
    // primitive-polynomial tail, and values lighting every nibble table.
    let coeffs = [0u32, 1, 2, 0x1021, 0x8E2B, 0xFFFF];
    for backend in backends() {
        for &len in &ADVERSARIAL_LENS16 {
            // One leading byte so `&buf[1..]` misaligns every vector
            // load while the slice itself stays whole symbols.
            let src_buf = payload(len as u64 + 7, len + 1);
            let dst_buf = payload(len as u64 + 3000, len + 1);
            let src = &src_buf[1..];
            for &ci in &coeffs {
                let c = Gf65536::from_index(ci);

                let mut got = dst_buf[1..].to_vec();
                backend.payload_mul_acc(&mut got, src, c);
                let mut want = dst_buf[1..].to_vec();
                KernelBackend::Scalar.payload_mul_acc(&mut want, src, c);
                assert_eq!(got, want, "{backend:?} mul16_acc len {len} c {ci:#x}");

                let mut got = dst_buf[1..].to_vec();
                backend.payload_mul_into(&mut got, src, c);
                let mut want = dst_buf[1..].to_vec();
                KernelBackend::Scalar.payload_mul_into(&mut want, src, c);
                assert_eq!(got, want, "{backend:?} mul16_into len {len} c {ci:#x}");

                let mut got = dst_buf[1..].to_vec();
                backend.payload_scale(&mut got, c);
                let mut want = dst_buf[1..].to_vec();
                KernelBackend::Scalar.payload_scale(&mut want, c);
                assert_eq!(got, want, "{backend:?} scale16 len {len} c {ci:#x}");
            }
        }
    }
}

#[test]
fn gf65536_multi_matches_a_loop_of_single_source_on_every_backend() {
    // Source counts straddling WIDE16_FUSE (8) and the ones-partition
    // MAX_FUSE (16); coefficients mix zero (dropped), one (XOR
    // partition), and general values (nibble-table partition).
    for backend in backends() {
        for &len in &ADVERSARIAL_LENS16 {
            for n_srcs in [0usize, 1, 2, 7, 8, 9, 20] {
                let srcs: Vec<Vec<u8>> = (0..n_srcs)
                    .map(|i| payload((i * 13 + 5) as u64, len + 1))
                    .collect();
                let pairs: Vec<(Gf65536, &[u8])> = srcs
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (Gf65536::from_index((i as u32 * 9973) % 65536), &s[1..]))
                    .collect();
                let dst0 = payload(271, len + 1)[1..].to_vec();

                let mut fused = dst0.clone();
                backend.payload_mul_acc_multi(&mut fused, &pairs);
                let mut looped = dst0.clone();
                for &(c, s) in &pairs {
                    KernelBackend::Scalar.payload_mul_acc(&mut looped, s, c);
                }
                assert_eq!(fused, looped, "{backend:?} acc16 len {len} n {n_srcs}");

                let mut fused_into = dst0.clone();
                backend.payload_mul_into_multi(&mut fused_into, &pairs);
                let mut looped_into = vec![0u8; len];
                for &(c, s) in &pairs {
                    KernelBackend::Scalar.payload_mul_acc(&mut looped_into, s, c);
                }
                assert_eq!(
                    fused_into, looped_into,
                    "{backend:?} into16 len {len} n {n_srcs}"
                );
            }
        }
    }
}

#[test]
fn gf65536_odd_byte_lengths_panic_in_the_payload_kernels() {
    // The gf-crate contract is a panic (the codecs in `xorbas_core`
    // front it with the typed `PayloadNotSymbolAligned` error).
    let src = payload(1, 5);
    for backend in backends() {
        let result = std::panic::catch_unwind(|| {
            let mut dst = vec![0u8; 5];
            backend.payload_mul_acc(&mut dst, &src, Gf65536::from_index(3));
        });
        assert!(result.is_err(), "{backend:?} accepted an odd length");
    }
}

proptest! {
    #[test]
    fn randomized_mul_acc_bit_identity_across_backends(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        src in proptest::collection::vec(any::<u8>(), 0..300),
        c in 0u32..256,
        skip in 0usize..3,
    ) {
        let m = data.len().min(src.len());
        let skip = skip.min(m);
        let n = m - skip;
        let c = Gf256::from_index(c);
        let mut want = data[skip..skip + n].to_vec();
        KernelBackend::Scalar.mul_acc(&mut want, &src[skip..skip + n], c);
        for backend in backends() {
            let mut got = data[skip..skip + n].to_vec();
            backend.mul_acc(&mut got, &src[skip..skip + n], c);
            prop_assert_eq!(&got, &want, "{:?}", backend);
        }
    }

    #[test]
    fn randomized_multi_bit_identity_across_backends(
        dst in proptest::collection::vec(any::<u8>(), 0..200),
        srcs in proptest::collection::vec(
            (0u32..256, proptest::collection::vec(any::<u8>(), 200..201)),
            0..20,
        ),
    ) {
        let n = dst.len();
        let pairs: Vec<(Gf256, &[u8])> = srcs
            .iter()
            .map(|(c, s)| (Gf256::from_index(*c), &s[..n]))
            .collect();
        let mut want = dst.clone();
        for &(c, s) in &pairs {
            KernelBackend::Scalar.mul_acc(&mut want, s, c);
        }
        for backend in backends() {
            let mut got = dst.clone();
            backend.mul_acc_multi(&mut got, &pairs);
            prop_assert_eq!(&got, &want, "{:?}", backend);
        }
    }

    #[test]
    fn randomized_gf65536_mul_acc_bit_identity_across_backends(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        src in proptest::collection::vec(any::<u8>(), 0..300),
        c in 0u32..65536,
        skip in 0usize..2,
    ) {
        // `skip = 1` starts the slices at an odd address: vector loads
        // misalign while the slices stay whole two-byte symbols.
        let m = data.len().min(src.len());
        let skip = skip.min(m);
        let n = ((m - skip) / 2) * 2;
        let c = Gf65536::from_index(c);
        let mut want = data[skip..skip + n].to_vec();
        KernelBackend::Scalar.payload_mul_acc(&mut want, &src[skip..skip + n], c);
        for backend in backends() {
            let mut got = data[skip..skip + n].to_vec();
            backend.payload_mul_acc(&mut got, &src[skip..skip + n], c);
            prop_assert_eq!(&got, &want, "{:?}", backend);
        }
    }

    #[test]
    fn randomized_gf65536_multi_matches_symbolwise_reference(
        dst in proptest::collection::vec(any::<u8>(), 0..128),
        srcs in proptest::collection::vec(
            (0u32..65536, proptest::collection::vec(any::<u8>(), 128..129)),
            0..10,
        ),
    ) {
        let n = (dst.len() / 2) * 2;
        let pairs: Vec<(Gf65536, &[u8])> = srcs
            .iter()
            .map(|(c, s)| (Gf65536::from_index(*c), &s[..n]))
            .collect();
        // Reference: symbol-at-a-time field arithmetic.
        let mut want: Vec<Gf65536> = slice_ops::bytes_to_symbols(&dst[..n]);
        for &(c, s) in &pairs {
            let syms: Vec<Gf65536> = slice_ops::bytes_to_symbols(s);
            slice_ops::gf_mul_acc(&mut want, &syms, c);
        }
        let want_bytes = slice_ops::symbols_to_bytes(&want);
        let mut got = dst[..n].to_vec();
        slice_ops::payload_mul_acc_multi(&mut got, &pairs);
        prop_assert_eq!(&got, &want_bytes);
        for backend in backends() {
            let mut got = dst[..n].to_vec();
            backend.payload_mul_acc_multi(&mut got, &pairs);
            prop_assert_eq!(&got, &want_bytes, "{:?}", backend);
        }
    }
}
