//! Structured matrix constructors used by the code constructions.

use xorbas_gf::Field;

use crate::Matrix;

/// The Vandermonde-type parity-check matrix of Appendix D:
/// `[H]_{i,j} = α^{(i-1)(j-1)}` (1-based), i.e. row `i`, column `j`
/// (0-based) holds `α^{i·j}` where `α` is the field's primitive element.
///
/// Any `rows × rows` submatrix (column selection) is itself a Vandermonde
/// matrix on distinct points `α^{j}` and therefore invertible, provided
/// `cols ≤ ORDER - 1`. Panics otherwise.
pub fn vandermonde<F: Field>(rows: usize, cols: usize) -> Matrix<F> {
    assert!(
        (cols as u64) < u64::from(F::ORDER),
        "blocklength {cols} exceeds the number of distinct evaluation points"
    );
    Matrix::from_fn(rows, cols, |r, c| F::exp((r as u32) * (c as u32)))
}

/// A Vandermonde matrix on caller-chosen points: `[i][j] = points[j]^i`.
///
/// Points must be distinct for the MDS property; that is asserted here.
pub fn vandermonde_with_points<F: Field>(rows: usize, points: &[F]) -> Matrix<F> {
    for (i, a) in points.iter().enumerate() {
        for b in &points[i + 1..] {
            assert!(a != b, "evaluation points must be distinct");
        }
    }
    Matrix::from_fn(rows, points.len(), |r, c| points[c].pow(r as u64))
}

/// A Cauchy matrix `[i][j] = 1 / (x_i + y_j)`.
///
/// Requires `x_i + y_j != 0` for all pairs (in characteristic 2 this means
/// the `x` and `y` sets are disjoint) and distinct entries within each set;
/// all submatrices are then invertible — the other classical MDS family.
pub fn cauchy<F: Field>(xs: &[F], ys: &[F]) -> Matrix<F> {
    for x in xs {
        for y in ys {
            assert!(!(*x + *y).is_zero(), "x and y sets must be disjoint");
        }
    }
    // Every denominator was just checked nonzero.
    Matrix::from_fn(xs.len(), ys.len(), |r, c| {
        (xs[r] + ys[c]).inv().unwrap_or(F::ZERO)
    })
}

/// Transforms a `k × n` full-row-rank generator matrix into *systematic*
/// form: `A · G = [I_k | P]` where `A = (G_{:,0..k})^{-1}`.
///
/// Returns `None` if the first `k` columns are singular. Row
/// transformations preserve the code (the set of codewords), its
/// distance, and its locality — and also preserve the Appendix-D
/// alignment property `Σ_j g_j = 0`, since `A · (G · 1ᵀ) = 0`.
pub fn systematize<F: Field>(g: &Matrix<F>) -> Option<Matrix<F>> {
    let k = g.rows();
    let lead = g.select_columns(&(0..k).collect::<Vec<_>>());
    let a = lead.invert()?;
    Some(a.mul(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xorbas_gf::{Field, Gf16, Gf256};

    #[test]
    fn vandermonde_first_row_is_all_ones() {
        let h = vandermonde::<Gf256>(4, 14);
        assert!(h.row(0).iter().all(|&x| x == Gf256::ONE));
    }

    #[test]
    fn vandermonde_every_square_submatrix_is_invertible() {
        // Exhaustive over all 4-column selections of the RS(10,4) H.
        let h = vandermonde::<Gf256>(4, 14);
        let n = h.cols();
        let mut count = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    for d in (c + 1)..n {
                        let sub = h.select_columns(&[a, b, c, d]);
                        assert!(
                            sub.invert().is_some(),
                            "singular submatrix at columns {a},{b},{c},{d}"
                        );
                        count += 1;
                    }
                }
            }
        }
        assert_eq!(count, 1001); // C(14,4)
    }

    #[test]
    #[should_panic(expected = "exceeds the number of distinct evaluation points")]
    fn vandermonde_rejects_oversized_blocklength() {
        let _ = vandermonde::<Gf16>(2, 16);
    }

    #[test]
    fn vandermonde_with_points_matches_canonical() {
        let points: Vec<Gf256> = (0..14).map(Gf256::exp).collect();
        let a = vandermonde::<Gf256>(4, 14);
        let b = vandermonde_with_points(4, &points);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "evaluation points must be distinct")]
    fn vandermonde_with_duplicate_points_panics() {
        let points = vec![Gf256::ONE, Gf256::ONE];
        let _ = vandermonde_with_points(2, &points);
    }

    #[test]
    fn cauchy_submatrices_invertible() {
        let xs: Vec<Gf16> = (1..5).map(Gf16::from_index).collect();
        let ys: Vec<Gf16> = (5..9).map(Gf16::from_index).collect();
        let c = cauchy(&xs, &ys);
        assert!(c.invert().is_some());
        for i in 0..4 {
            for j in 0..4 {
                assert!(!c[(i, j)].is_zero());
            }
        }
    }

    #[test]
    fn systematize_yields_identity_prefix() {
        let h = vandermonde::<Gf256>(4, 14);
        let g = h.right_null_space();
        let gs = systematize(&g).expect("leading columns invertible");
        for i in 0..10 {
            for j in 0..10 {
                let expect = if i == j { Gf256::ONE } else { Gf256::ZERO };
                assert_eq!(gs[(i, j)], expect);
            }
        }
        // Still a generator of the same code: G_s H^T = 0.
        assert!(gs.mul(&h.transpose()).is_zero());
    }

    #[test]
    fn systematize_preserves_all_ones_alignment() {
        // Appendix D: the all-ones vector is in H's row space, so every
        // generator (including the systematic one) has columns XOR-ing to 0.
        let h = vandermonde::<Gf256>(4, 14);
        let gs = systematize(&h.right_null_space()).unwrap();
        for r in 0..gs.rows() {
            let sum: Gf256 = gs.row(r).iter().copied().sum();
            assert!(sum.is_zero(), "row {r} does not align");
        }
    }
}
