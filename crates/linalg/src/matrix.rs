//! The dense row-major [`Matrix`] type.

use std::fmt;

use xorbas_gf::Field;

/// A dense matrix over a binary extension field, stored row-major.
///
/// The dimensions involved in erasure coding are tiny (k, n ≤ a few
/// hundred), so the implementation favours clarity over blocking or
/// SIMD; the payload-streaming hot path lives in `xorbas_gf::slice_ops`,
/// not here.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix<F> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: Field> Matrix<F> {
    /// An all-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![F::ZERO; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m[(i, i)] = F::ONE;
        }
        m
    }

    /// Builds a matrix from a generating function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from rows; panics if rows have unequal lengths.
    pub fn from_rows(rows: Vec<Vec<F>>) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|r| r.len() == ncols),
            "all rows must have the same length"
        );
        let data = rows.into_iter().flatten().collect();
        Self {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|x| x.is_zero())
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[F] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [F] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Extracts column `c` as a vector.
    pub fn column(&self, c: usize) -> Vec<F> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix multiplication `self * rhs`; panics on dimension mismatch.
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix multiply");
        let mut out = Self::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for (l, &a) in self.row(i).iter().enumerate() {
                if a.is_zero() {
                    continue;
                }
                let rhs_row = rhs.row(l);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`; panics on dimension mismatch.
    pub fn mul_vec(&self, v: &[F]) -> Vec<F> {
        assert_eq!(
            self.cols,
            v.len(),
            "dimension mismatch in matrix-vector multiply"
        );
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Row-vector-matrix product `v * self`; panics on dimension mismatch.
    pub fn vec_mul(&self, v: &[F]) -> Vec<F> {
        assert_eq!(
            self.rows,
            v.len(),
            "dimension mismatch in vector-matrix multiply"
        );
        let mut out = vec![F::ZERO; self.cols];
        for (i, &coef) in v.iter().enumerate() {
            if coef.is_zero() {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += coef * a;
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Horizontal concatenation `[self | rhs]`; panics if row counts differ.
    pub fn hcat(&self, rhs: &Self) -> Self {
        assert_eq!(self.rows, rhs.rows, "row count mismatch in hcat");
        Self::from_fn(self.rows, self.cols + rhs.cols, |r, c| {
            if c < self.cols {
                self[(r, c)]
            } else {
                rhs[(r, c - self.cols)]
            }
        })
    }

    /// Vertical concatenation; panics if column counts differ.
    pub fn vcat(&self, below: &Self) -> Self {
        assert_eq!(self.cols, below.cols, "column count mismatch in vcat");
        Self::from_fn(self.rows + below.rows, self.cols, |r, c| {
            if r < self.rows {
                self[(r, c)]
            } else {
                below[(r - self.rows, c)]
            }
        })
    }

    /// A new matrix keeping only the given columns, in the given order.
    pub fn select_columns(&self, cols: &[usize]) -> Self {
        Self::from_fn(self.rows, cols.len(), |r, c| self[(r, cols[c])])
    }

    /// A new matrix keeping only the given rows, in the given order.
    pub fn select_rows(&self, rows: &[usize]) -> Self {
        Self::from_fn(rows.len(), self.cols, |r, c| self[(rows[r], c)])
    }

    /// Appends a column to the right.
    pub fn push_column(&mut self, col: &[F]) {
        assert_eq!(col.len(), self.rows, "column length mismatch");
        let mut data = Vec::with_capacity(self.rows * (self.cols + 1));
        for (r, &value) in col.iter().enumerate() {
            data.extend_from_slice(self.row(r));
            data.push(value);
        }
        self.cols += 1;
        self.data = data;
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * self.cols);
        head[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Multiplies row `r` by `c` in place.
    pub fn scale_row(&mut self, r: usize, c: F) {
        for x in self.row_mut(r) {
            *x *= c;
        }
    }

    /// Adds `c * row[src]` into `row[dst]` in place.
    pub fn add_scaled_row(&mut self, dst: usize, src: usize, c: F) {
        assert_ne!(dst, src, "source and destination rows must differ");
        if c.is_zero() {
            return;
        }
        let cols = self.cols;
        let (lo, hi) = (dst.min(src), dst.max(src));
        let (head, tail) = self.data.split_at_mut(hi * cols);
        let (first, second) = (&mut head[lo * cols..(lo + 1) * cols], &mut tail[..cols]);
        let (dst_row, src_row): (&mut [F], &[F]) = if dst < src {
            (first, second)
        } else {
            (second, first)
        };
        for (d, &s) in dst_row.iter_mut().zip(src_row.iter()) {
            *d += c * s;
        }
    }
}

impl<F: Field> std::ops::Index<(usize, usize)> for Matrix<F> {
    type Output = F;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &F {
        debug_assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl<F: Field> std::ops::IndexMut<(usize, usize)> for Matrix<F> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut F {
        debug_assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl<F: Field> fmt::Debug for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xorbas_gf::Gf256;

    fn m(rows: Vec<Vec<u32>>) -> Matrix<Gf256> {
        Matrix::from_rows(
            rows.into_iter()
                .map(|r| r.into_iter().map(Gf256::from_index).collect())
                .collect(),
        )
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = m(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        let i3 = Matrix::<Gf256>::identity(3);
        let i2 = Matrix::<Gf256>::identity(2);
        assert_eq!(a.mul(&i3), a);
        assert_eq!(i2.mul(&a), a);
    }

    #[test]
    fn transpose_twice_is_identity_op() {
        let a = m(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn mul_vec_agrees_with_mul() {
        let a = m(vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
        let v = vec![Gf256::from_index(7), Gf256::from_index(11)];
        let as_matrix = a.mul(&Matrix::from_rows(v.iter().map(|&x| vec![x]).collect()));
        let as_vec = a.mul_vec(&v);
        assert_eq!(as_matrix.column(0), as_vec);
    }

    #[test]
    fn vec_mul_agrees_with_transpose_mul_vec() {
        let a = m(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        let v = vec![Gf256::from_index(9), Gf256::from_index(13)];
        assert_eq!(a.vec_mul(&v), a.transpose().mul_vec(&v));
    }

    #[test]
    fn hcat_vcat_shapes_and_content() {
        let a = m(vec![vec![1], vec![2]]);
        let b = m(vec![vec![3], vec![4]]);
        let h = a.hcat(&b);
        assert_eq!((h.rows(), h.cols()), (2, 2));
        assert_eq!(h[(1, 1)], Gf256::from_index(4));
        let v = a.vcat(&b);
        assert_eq!((v.rows(), v.cols()), (4, 1));
        assert_eq!(v[(3, 0)], Gf256::from_index(4));
    }

    #[test]
    fn select_columns_reorders() {
        let a = m(vec![vec![1, 2, 3]]);
        let s = a.select_columns(&[2, 0]);
        assert_eq!(s.row(0), &[Gf256::from_index(3), Gf256::from_index(1)]);
    }

    #[test]
    fn row_ops_match_manual_expectation() {
        let mut a = m(vec![vec![1, 2], vec![3, 4]]);
        a.swap_rows(0, 1);
        assert_eq!(a.row(0), m(vec![vec![3, 4]]).row(0));
        a.add_scaled_row(0, 1, Gf256::ONE); // row0 += row1 (XOR)
        assert_eq!(a[(0, 0)], Gf256::from_index(1 ^ 3));
        a.scale_row(1, Gf256::ZERO);
        assert!(a.row(1).iter().all(|x| x.is_zero()));
    }

    #[test]
    fn push_column_appends() {
        let mut a = m(vec![vec![1], vec![2]]);
        a.push_column(&[Gf256::from_index(5), Gf256::from_index(6)]);
        assert_eq!(a.cols(), 2);
        assert_eq!(a[(1, 1)], Gf256::from_index(6));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_dimension_mismatch_panics() {
        let a = m(vec![vec![1, 2]]);
        let b = m(vec![vec![1, 2]]);
        let _ = a.mul(&b);
    }
}
