//! Dense linear algebra over binary extension fields.
//!
//! Everything the codec crate needs to realize the constructions of the
//! paper's Appendix D: Vandermonde parity-check matrices, (right) null
//! spaces for deriving generator matrices, Gaussian elimination for
//! systematic transforms and erasure decoding, and rank computations for
//! the brute-force minimum-distance / locality analyses.
//!
//! # Module map (paper section → module)
//!
//! | Paper | Item | What it provides |
//! |---|---|---|
//! | App. D `[H]_{i,j} = α^{(i-1)(j-1)}` | [`special::vandermonde`] | parity-check matrices |
//! | App. D generator derivation | [`Matrix::right_null_space`] | `G` with `G·Hᵀ = 0` |
//! | §3.1.2 heavy decode | [`Matrix::solve`] / elimination | erasure solving |
//! | Defs. 1–2 analyses | [`Matrix::rank`] | distance/locality brute force |
//!
//! Elements come from `xorbas_gf` (any [`xorbas_gf::Field`]); the
//! consumer is `xorbas_core`, which compiles these solves into reusable
//! repair sessions.
//!
//! # Example
//!
//! ```
//! use xorbas_gf::{Field, Gf256};
//! use xorbas_linalg::{special, Matrix};
//!
//! // The 4x14 Vandermonde parity-check matrix of the paper's RS(10,4).
//! let h: Matrix<Gf256> = special::vandermonde(4, 14);
//! let g = h.right_null_space();
//! assert_eq!((g.rows(), g.cols()), (10, 14));
//! // G H^T = 0  — the defining property of a generator matrix.
//! assert!(g.mul(&h.transpose()).is_zero());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gauss;
mod matrix;
pub mod special;

pub use matrix::Matrix;
