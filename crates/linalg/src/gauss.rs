//! Gaussian elimination: rank, inverse, solving, null spaces.

use xorbas_gf::Field;

use crate::Matrix;

impl<F: Field> Matrix<F> {
    /// Reduces a copy of `self` to *reduced row echelon form*.
    ///
    /// Returns the reduced matrix and the pivot column of each of the
    /// first `rank` rows.
    pub fn rref(&self) -> (Self, Vec<usize>) {
        let mut m = self.clone();
        let mut pivots = Vec::new();
        let mut row = 0;
        for col in 0..m.cols() {
            if row == m.rows() {
                break;
            }
            let Some(pivot_row) = (row..m.rows()).find(|&r| !m[(r, col)].is_zero()) else {
                continue;
            };
            m.swap_rows(row, pivot_row);
            // The pivot was selected nonzero just above.
            let Some(inv) = m[(row, col)].inv() else {
                debug_assert!(false, "pivot is nonzero");
                continue;
            };
            m.scale_row(row, inv);
            for r in 0..m.rows() {
                if r != row && !m[(r, col)].is_zero() {
                    let c = m[(r, col)];
                    m.add_scaled_row(r, row, c); // char 2: add == subtract
                }
            }
            pivots.push(col);
            row += 1;
        }
        (m, pivots)
    }

    /// The rank of the matrix.
    pub fn rank(&self) -> usize {
        self.rref().1.len()
    }

    /// The inverse, or `None` if the matrix is singular or non-square.
    pub fn invert(&self) -> Option<Self> {
        if self.rows() != self.cols() {
            return None;
        }
        let n = self.rows();
        let (reduced, pivots) = self.hcat(&Self::identity(n)).rref();
        if pivots.len() < n || pivots[..n] != (0..n).collect::<Vec<_>>()[..] {
            return None;
        }
        Some(reduced.select_columns(&(n..2 * n).collect::<Vec<_>>()))
    }

    /// The determinant (`None` for non-square matrices).
    ///
    /// In characteristic 2 the sign bookkeeping of row swaps vanishes,
    /// so this is a plain elimination product.
    pub fn determinant(&self) -> Option<F> {
        if self.rows() != self.cols() {
            return None;
        }
        let mut m = self.clone();
        let n = m.rows();
        let mut det = F::ONE;
        for col in 0..n {
            let Some(pivot_row) = (col..n).find(|&r| !m[(r, col)].is_zero()) else {
                return Some(F::ZERO);
            };
            m.swap_rows(col, pivot_row);
            det *= m[(col, col)];
            // The pivot was selected nonzero just above.
            let Some(inv) = m[(col, col)].inv() else {
                debug_assert!(false, "pivot is nonzero");
                return Some(F::ZERO);
            };
            for r in (col + 1)..n {
                if !m[(r, col)].is_zero() {
                    let factor = m[(r, col)] * inv;
                    m.add_scaled_row(r, col, factor);
                }
            }
        }
        Some(det)
    }

    /// Solves `self * x = b` for a single right-hand-side vector.
    ///
    /// Returns `None` when the system is inconsistent or the solution is
    /// not unique (rank-deficient square / underdetermined systems).
    pub fn solve(&self, b: &[F]) -> Option<Vec<F>> {
        assert_eq!(b.len(), self.rows(), "rhs length mismatch");
        let rhs = Matrix::from_fn(self.rows(), 1, |r, _| b[r]);
        let (reduced, pivots) = self.hcat(&rhs).rref();
        // Unique solution requires a pivot in every variable column.
        if pivots.iter().take_while(|&&p| p < self.cols()).count() != self.cols() {
            return None;
        }
        // Inconsistent if any pivot landed in the RHS column.
        if pivots.iter().any(|&p| p >= self.cols()) {
            return None;
        }
        Some(
            (0..self.cols())
                .map(|i| reduced[(i, self.cols())])
                .collect(),
        )
    }

    /// A basis of the right null space, returned as the rows of a
    /// `(cols - rank) x cols` matrix `N` with `self * Nᵀ = 0`.
    ///
    /// This is exactly how a generator matrix is obtained from a
    /// parity-check matrix: `G = H.right_null_space()` (Appendix D).
    pub fn right_null_space(&self) -> Self {
        let (reduced, pivots) = self.rref();
        let free: Vec<usize> = (0..self.cols()).filter(|c| !pivots.contains(c)).collect();
        let mut basis = Matrix::zero(free.len(), self.cols());
        for (i, &fc) in free.iter().enumerate() {
            basis[(i, fc)] = F::ONE;
            for (prow, &pcol) in pivots.iter().enumerate() {
                // x_pcol = -sum(reduced[prow, free] * x_free); char 2 drops the sign.
                basis[(i, pcol)] = reduced[(prow, fc)];
            }
        }
        basis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use xorbas_gf::{Field, Gf256};

    fn m(rows: Vec<Vec<u32>>) -> Matrix<Gf256> {
        Matrix::from_rows(
            rows.into_iter()
                .map(|r| r.into_iter().map(Gf256::from_index).collect())
                .collect(),
        )
    }

    #[test]
    fn rref_of_identity_is_identity() {
        let i = Matrix::<Gf256>::identity(4);
        let (r, pivots) = i.rref();
        assert_eq!(r, i);
        assert_eq!(pivots, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rank_detects_dependent_rows() {
        // Row 2 = row0 + row1 (XOR of indices).
        let a = m(vec![vec![1, 2, 3], vec![4, 5, 6], vec![5, 7, 5]]);
        assert_eq!(a.rank(), 2);
    }

    #[test]
    fn invert_round_trip() {
        let a = m(vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 9, 2]]);
        let inv = a.invert().expect("invertible");
        assert_eq!(a.mul(&inv), Matrix::identity(3));
        assert_eq!(inv.mul(&a), Matrix::identity(3));
    }

    #[test]
    fn singular_matrix_has_no_inverse_and_zero_det() {
        let a = m(vec![vec![1, 2], vec![1, 2]]);
        assert!(a.invert().is_none());
        assert_eq!(a.determinant(), Some(Gf256::ZERO));
    }

    #[test]
    fn determinant_of_identity_and_diagonal() {
        assert_eq!(Matrix::<Gf256>::identity(5).determinant(), Some(Gf256::ONE));
        let d = m(vec![vec![3, 0], vec![0, 7]]);
        assert_eq!(
            d.determinant(),
            Some(Gf256::from_index(3) * Gf256::from_index(7))
        );
    }

    #[test]
    fn solve_recovers_known_vector() {
        let a = m(vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 9, 2]]);
        let x: Vec<Gf256> = [11u32, 12, 13]
            .iter()
            .map(|&v| Gf256::from_index(v))
            .collect();
        let b = a.mul_vec(&x);
        assert_eq!(a.solve(&b), Some(x));
    }

    #[test]
    fn solve_rejects_singular_systems() {
        let a = m(vec![vec![1, 2], vec![1, 2]]);
        // Consistent but underdetermined.
        assert_eq!(a.solve(&[Gf256::from_index(3), Gf256::from_index(3)]), None);
        // Inconsistent.
        assert_eq!(a.solve(&[Gf256::from_index(3), Gf256::from_index(4)]), None);
    }

    #[test]
    fn null_space_is_annihilated_and_has_full_rank() {
        let h = crate::special::vandermonde::<Gf256>(4, 14);
        let g = h.right_null_space();
        assert_eq!(g.rows(), 10);
        assert!(h.mul(&g.transpose()).is_zero());
        assert_eq!(g.rank(), 10);
    }

    #[test]
    fn null_space_of_full_rank_square_matrix_is_empty() {
        let a = m(vec![vec![1, 0], vec![0, 1]]);
        assert_eq!(a.right_null_space().rows(), 0);
    }

    fn arb_matrix(n: usize) -> impl Strategy<Value = Matrix<Gf256>> {
        proptest::collection::vec(0u32..256, n * n)
            .prop_map(move |vals| Matrix::from_fn(n, n, |r, c| Gf256::from_index(vals[r * n + c])))
    }

    proptest! {
        #[test]
        fn inverse_composes_to_identity(a in arb_matrix(4)) {
            if let Some(inv) = a.invert() {
                prop_assert_eq!(a.mul(&inv), Matrix::identity(4));
            } else {
                prop_assert!(a.rank() < 4);
            }
        }

        #[test]
        fn determinant_zero_iff_singular(a in arb_matrix(3)) {
            let det = a.determinant().unwrap();
            prop_assert_eq!(det.is_zero(), a.rank() < 3);
        }

        #[test]
        fn determinant_is_multiplicative(a in arb_matrix(3), b in arb_matrix(3)) {
            let ab = a.mul(&b).determinant().unwrap();
            prop_assert_eq!(ab, a.determinant().unwrap() * b.determinant().unwrap());
        }

        #[test]
        fn null_space_dimension_is_cols_minus_rank(a in arb_matrix(4)) {
            let ns = a.right_null_space();
            prop_assert_eq!(ns.rows(), 4 - a.rank());
            prop_assert!(a.mul(&ns.transpose()).is_zero());
        }

        #[test]
        fn rref_preserves_row_space_rank(a in arb_matrix(4)) {
            let (r, pivots) = a.rref();
            prop_assert_eq!(r.rank(), pivots.len());
            prop_assert_eq!(a.rank(), pivots.len());
        }
    }
}
