//! Vendored miniature of the `criterion` 0.5 API surface used by this
//! workspace (see `vendor/README.md`).
//!
//! Measurement model: every `bench_function` warms up once, then times
//! `sample_size` batches of an adaptively chosen iteration count
//! (targeting ~50 ms per batch) and reports the best batch's mean
//! per-iteration time, plus throughput when the group declares one.
//! No plots, no statistics files — a line per benchmark on stdout.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reporting per-iteration throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration (reported in binary units).
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` setup costs relate to measurement batches.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI args are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one("", id, None, sample_size, f);
        self
    }

    /// No-op; present so `criterion_main!`-style drivers can call it.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration, enabling rate output.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of measured batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Measures `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.to_string(),
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`, excluding setup cost
    /// by timing each call individually.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F>(group: &str, id: &str, throughput: Option<Throughput>, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: one iteration to size batches near ~50 ms each.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let batch_iters =
        (Duration::from_millis(50).as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    // Only batch means compete: the one-shot calibration measurement is
    // too quantized to be allowed to win.
    let mut best = Duration::MAX;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: batch_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed / batch_iters as u32;
        if mean < best {
            best = mean;
        }
    }

    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gib_s = bytes as f64 / best.as_secs_f64() / (1u64 << 30) as f64;
            format!("  [{gib_s:.3} GiB/s]")
        }
        Some(Throughput::Elements(n)) => {
            let elems_s = n as f64 / best.as_secs_f64();
            format!("  [{elems_s:.0} elem/s]")
        }
        None => String::new(),
    };
    println!("{label:<48} time: {best:>12.3?}/iter{rate}");
}

/// Bundles benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Generates `fn main` invoking each group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Bytes(64));
        g.sample_size(2);
        let mut ran = 0u64;
        g.bench_function("xor", |b| {
            b.iter(|| {
                ran += 1;
                black_box(0xA5u8 ^ 0x5A)
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(
            || vec![1u8; 16],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.elapsed > Duration::ZERO || b.iters == 3);
    }
}
