//! Vendored miniature of the `proptest` 1.x API surface used by this
//! workspace (see `vendor/README.md`).
//!
//! Semantics: each `#[test]` inside [`proptest!`] runs
//! `ProptestConfig::cases` random cases drawn from its strategies.
//! A failing case reports the test name, case index, and base seed so
//! it can be replayed by setting `XORBAS_PROPTEST_SEED` — and is then
//! **shrunk**: integer-range and `collection::vec` strategies walk
//! failing values toward the range start (binary search over the
//! distance) and failing vectors toward their minimum length, tuples
//! shrink one coordinate at a time, and the runner reports the minimal
//! still-failing input. Mapped (`prop_map`/`prop_flat_map`) and `any`
//! strategies do not shrink — their draw cannot be inverted.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Candidate simplifications of a failing `value`, simplest
        /// first. The runner adopts the first candidate that still
        /// fails and asks again, so a handful of halving steps per
        /// round gives binary-search convergence overall. The default
        /// (mapped, `any`, set strategies) offers none.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Uses a generated value to pick a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (**self).sample(rng)
        }
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            (**self).shrink(value)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    /// Binary-search shrink candidates for an integer: the range start
    /// itself, then values stepping back from `v` by halving distances,
    /// then `v - 1`. Adopting any failing candidate and re-asking
    /// converges to the smallest failing value in O(log²) case runs.
    fn int_shrink_candidates(lo: i128, v: i128) -> Vec<i128> {
        let mut out = Vec::new();
        if v <= lo {
            return out;
        }
        out.push(lo);
        let mut delta = (v - lo) / 2;
        while delta > 1 {
            out.push(v - delta);
            delta /= 2;
        }
        out.push(v - 1);
        out.dedup();
        out
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink_candidates(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink_candidates(*self.start() as i128, *value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
        )*};
    }
    impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $i:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+)
            where
                $($S::Value: Clone,)+
            {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // One coordinate at a time, others held fixed.
                    let mut out = Vec::new();
                    $(
                        for c in self.$i.shrink(&value.$i) {
                            let mut v = value.clone();
                            v.$i = c;
                            out.push(v);
                        }
                    )+
                    out
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Types with a canonical "any value" strategy ([`any`]).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            rng.gen()
        }
    }
    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    /// An inclusive size bound for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub lo: usize,
        /// Maximum length (inclusive).
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`crate::collection::btree_set`].
    pub struct BTreeSetStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            let mut set = std::collections::BTreeSet::new();
            // Bounded attempts: small element domains may not be able to
            // fill `n` distinct slots; prefer a smaller set to looping.
            let mut attempts = 0;
            while set.len() < n && attempts < 20 * (n + 1) {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Strategy returned by [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            let len = value.len();
            // Length first: binary search down toward the minimum,
            // always by truncation so surviving elements are stable.
            for target in int_shrink_candidates(self.size.lo as i128, len as i128) {
                out.push(value[..target as usize].to_vec());
            }
            // Then elements in place, a couple of candidates each.
            for i in 0..len {
                for c in self.element.shrink(&value[i]).into_iter().take(2) {
                    let mut v = value.clone();
                    v[i] = c;
                    out.push(v);
                }
            }
            out
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{BTreeSetStrategy, SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// A strategy for `BTreeSet`s of `element`; sets may come out smaller
    /// than requested when the element domain is nearly exhausted.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Case execution: config, error type, and the driver loop used by
    //! the [`crate::proptest!`] expansion.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass: a real failure, or a rejected
    /// (`prop_assume!`-filtered) input the runner silently skips.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The drawn input did not satisfy a `prop_assume!` filter.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected input (skipped, not failed).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Total case re-runs the shrinker may spend per failure. Binary
    /// search needs O(log²) of them; the cap only bites on pathological
    /// strategies and guarantees failing tests still terminate fast.
    const SHRINK_BUDGET: usize = 512;

    /// Greedily minimizes a failing `value`: each round asks the
    /// strategy for candidates (simplest first) and adopts the first
    /// one that still fails, until no candidate fails or the budget is
    /// spent. Returns the minimal value, its failure message, and the
    /// number of successful shrink steps.
    pub fn shrink_failure<S, F>(
        strat: &S,
        mut value: S::Value,
        mut msg: String,
        case: &F,
    ) -> (S::Value, String, usize)
    where
        S: crate::strategy::Strategy,
        S::Value: Clone,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut budget = SHRINK_BUDGET;
        let mut steps = 0;
        'minimize: loop {
            for candidate in strat.shrink(&value) {
                if budget == 0 {
                    break 'minimize;
                }
                budget -= 1;
                // A rejected candidate counts as passing: adopting it
                // would leave the failure unreproduced.
                if let Err(TestCaseError::Fail(m)) = case(candidate.clone()) {
                    value = candidate;
                    msg = m;
                    steps += 1;
                    continue 'minimize;
                }
            }
            break;
        }
        (value, msg, steps)
    }

    /// Runs `cases` seeded draws of `strat` through `case`, panicking on
    /// the first failure — after shrinking it to a minimal failing
    /// input.
    pub fn run<S, F>(name: &str, cfg: &ProptestConfig, strat: &S, case: F)
    where
        S: crate::strategy::Strategy,
        S::Value: Clone + std::fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let base = std::env::var("XORBAS_PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| fnv1a(name));
        for i in 0..cfg.cases {
            let mut rng =
                StdRng::seed_from_u64(base ^ u64::from(i).wrapping_mul(0x9E3779B97F4A7C15));
            let value = strat.sample(&mut rng);
            match case(value.clone()) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    let (min_value, min_msg, steps) = shrink_failure(strat, value, msg, &case);
                    panic!(
                        "proptest `{name}` failed at case {i}/{} (base seed {base}): {min_msg}\n\
                         minimal failing input after {steps} shrink steps: {min_value:?}",
                        cfg.cases
                    )
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn` becomes a `#[test]` running
/// `ProptestConfig::cases` random cases of its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            // All argument strategies fuse into one tuple strategy so
            // the runner can re-invoke the body on shrunk inputs.
            let __strategy = ($($strat,)+);
            $crate::test_runner::run(stringify!($name), &cfg, &__strategy, |__case_input| {
                let ($($arg,)+) = __case_input;
                (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })()
            });
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @munch ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                            l, r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
                            format!($($fmt)+), l, r
                        ),
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `(left != right)`\n  both: `{:?}`", l),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::shrink_failure;

    /// Binary-search shrinking converges an integer failure to the
    /// exact boundary value, not just somewhere smaller.
    #[test]
    fn integer_shrink_finds_the_exact_boundary() {
        let strat = 0u32..1000;
        let case = |v: u32| {
            if v >= 37 {
                Err(TestCaseError::fail(format!("{v} over the line")))
            } else {
                Ok(())
            }
        };
        let (min, msg, steps) = shrink_failure(&strat, 999, "999 over the line".into(), &case);
        assert_eq!(min, 37, "after {steps} steps: {msg}");
        assert!(steps > 0);
    }

    /// Inclusive ranges shrink toward their start, stopping at it.
    #[test]
    fn inclusive_range_shrinks_to_its_start() {
        let strat = 5usize..=80;
        let case = |_v: usize| Err(TestCaseError::fail("always"));
        let (min, _, _) = shrink_failure(&strat, 80, "always".into(), &case);
        assert_eq!(min, 5);
    }

    /// Vec shrinking minimizes the length by truncation and then the
    /// surviving elements toward the element-range start.
    #[test]
    fn vec_shrink_minimizes_length_then_elements() {
        let strat = crate::collection::vec(0u32..256, 0..50);
        let case = |v: Vec<u32>| {
            if v.len() >= 5 {
                Err(TestCaseError::fail("too long"))
            } else {
                Ok(())
            }
        };
        let start: Vec<u32> = (0..40).map(|i| 100 + i).collect();
        let (min, _, _) = shrink_failure(&strat, start, "too long".into(), &case);
        assert_eq!(min, vec![0u32; 5], "length pinned at 5, elements at 0");
    }

    /// Tuples shrink one coordinate at a time; a failure that needs a
    /// coordinate *sum* lands exactly on the constraint surface.
    #[test]
    fn tuple_shrink_lands_on_the_constraint_boundary() {
        let strat = (0u32..100, 0u32..100);
        let case = |(a, b): (u32, u32)| {
            if a + b >= 10 {
                Err(TestCaseError::fail("sum too big"))
            } else {
                Ok(())
            }
        };
        let (min, _, _) = shrink_failure(&strat, (73, 51), "sum too big".into(), &case);
        assert_eq!(min.0 + min.1, 10, "minimal failing pair {min:?}");
    }

    /// The runner reports the shrunk input in its panic message.
    #[test]
    #[should_panic(expected = "minimal failing input")]
    fn failing_cases_panic_with_the_minimal_input() {
        let cfg = ProptestConfig::with_cases(4);
        let strat = (1usize..500,);
        crate::test_runner::run("panics_with_minimal", &cfg, &strat, |(n,)| {
            if n >= 2 {
                Err(TestCaseError::fail("n too big"))
            } else {
                Ok(())
            }
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (1usize..=6, 10u32..20), flag in any::<bool>()) {
            prop_assert!((1..=6).contains(&a));
            prop_assert!((10..20).contains(&b));
            let _ = flag;
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u32..256, 3..=7)) {
            prop_assert!((3..=7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 256));
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..=5).prop_flat_map(|n| (0..n).prop_map(move |i| (n, i)))) {
            let (n, i) = pair;
            prop_assert!(i < n, "index {i} out of bound {n}");
        }
    }
}
