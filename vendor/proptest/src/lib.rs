//! Vendored miniature of the `proptest` 1.x API surface used by this
//! workspace (see `vendor/README.md`).
//!
//! Semantics: each `#[test]` inside [`proptest!`] runs
//! `ProptestConfig::cases` random cases drawn from its strategies.
//! Unlike the real crate there is **no shrinking** — a failing case
//! reports the test name, case index, and base seed so it can be
//! replayed by setting `XORBAS_PROPTEST_SEED`. Seeds are derived from
//! the test-function name, so runs are deterministic.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Uses a generated value to pick a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $i:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Types with a canonical "any value" strategy ([`any`]).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            rng.gen()
        }
    }
    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    /// An inclusive size bound for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub lo: usize,
        /// Maximum length (inclusive).
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`crate::collection::btree_set`].
    pub struct BTreeSetStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            let mut set = std::collections::BTreeSet::new();
            // Bounded attempts: small element domains may not be able to
            // fill `n` distinct slots; prefer a smaller set to looping.
            let mut attempts = 0;
            while set.len() < n && attempts < 20 * (n + 1) {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Strategy returned by [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{BTreeSetStrategy, SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// A strategy for `BTreeSet`s of `element`; sets may come out smaller
    /// than requested when the element domain is nearly exhausted.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Case execution: config, error type, and the driver loop used by
    //! the [`crate::proptest!`] expansion.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass: a real failure, or a rejected
    /// (`prop_assume!`-filtered) input the runner silently skips.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The drawn input did not satisfy a `prop_assume!` filter.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected input (skipped, not failed).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Runs `cases` seeded cases of `case`, panicking on the first failure.
    pub fn run<F>(name: &str, cfg: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let base = std::env::var("XORBAS_PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| fnv1a(name));
        for i in 0..cfg.cases {
            let mut rng =
                StdRng::seed_from_u64(base ^ u64::from(i).wrapping_mul(0x9E3779B97F4A7C15));
            match case(&mut rng) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(e @ TestCaseError::Fail(_)) => panic!(
                    "proptest `{name}` failed at case {i}/{} (base seed {base}): {e}",
                    cfg.cases
                ),
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn` becomes a `#[test]` running
/// `ProptestConfig::cases` random cases of its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(stringify!($name), &cfg, |rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)+
                (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })()
            });
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @munch ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                            l, r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
                            format!($($fmt)+), l, r
                        ),
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `(left != right)`\n  both: `{:?}`", l),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (1usize..=6, 10u32..20), flag in any::<bool>()) {
            prop_assert!((1..=6).contains(&a));
            prop_assert!((10..20).contains(&b));
            let _ = flag;
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u32..256, 3..=7)) {
            prop_assert!((3..=7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 256));
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..=5).prop_flat_map(|n| (0..n).prop_map(move |i| (n, i)))) {
            let (n, i) = pair;
            prop_assert!(i < n, "index {i} out of bound {n}");
        }
    }
}
