//! Vendored miniature of the `rand` 0.8 API surface used by this
//! workspace (see `vendor/README.md`). The container has no registry
//! access; swap the workspace `path` dependency for a version pin to use
//! the real crate — call sites are source-compatible.
//!
//! The only generator provided is [`rngs::StdRng`], a xoshiro256++ core
//! seeded via SplitMix64, which matches the statistical quality the
//! simulator needs (it never promises cross-version stream stability,
//! same as the real `StdRng`).

#![forbid(unsafe_code)]

/// A source of random `u64`s; the base trait every generator implements.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly at random by [`Rng::gen`] (the `Standard`
/// distribution of the real crate).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience methods layered over [`RngCore`] (auto-implemented).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from OS entropy; here, from a fixed seed mixed
    /// with the current time, adequate for non-cryptographic use.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(t)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded by
    /// SplitMix64. Statistically strong, not cryptographic — the same
    /// contract the real `StdRng` documents.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_uniform_enough() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);

        let mut rng = StdRng::seed_from_u64(42);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for _ in 0..1_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
