//! Cross-codec differential harness (PR 10): one generic suite driving
//! all three codec families — RS (10,4), LRC (10,6,5), and piggybacked
//! RS (10,4) — through the identical checks:
//!
//! * roundtrip at assorted symbol-aligned lengths (including the
//!   byte-scale odd tails the serial fallback handles);
//! * **every** single- and double-erasure pattern repaired
//!   bit-identically via all four surfaces: the owned-`Vec`
//!   `reconstruct`, the zero-copy `RepairSession` replay,
//!   `encode_into`, and `encode_into_parallel`;
//! * repair-read costs asserted *exactly* per family: RS always reads
//!   `k` lanes, the LRC light decoder reads its 5-lane local group,
//!   and a piggyback single-data-lane repair moves strictly fewer than
//!   `k` lane-volumes (the ISSUE's ~30% byte saving) while touching
//!   `k + 1` lanes.
//!
//! CI runs this harness under both native kernel dispatch and
//! `XORBAS_FORCE_SCALAR=1`, so a SIMD-only or scalar-only regression in
//! any family cannot hide.

use xorbas::codes::{
    encode_into_parallel, ErasureCodec, Lrc, PiggybackRs, ReedSolomon, StripeViewMut,
};

/// Deterministic pseudo-random payloads from a seed.
fn seeded_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as u8
    };
    (0..k).map(|_| (0..len).map(|_| next()).collect()).collect()
}

/// Drives one codec + payload + erasure pattern through every encode
/// and repair surface and asserts they agree bit-for-bit.
fn assert_all_paths_agree<C: ErasureCodec + Sync>(
    codec: &C,
    name: &str,
    data: &[Vec<u8>],
    erased: &[usize],
    threads: usize,
) {
    let k = codec.data_blocks();
    let n = codec.total_blocks();
    let len = data[0].len();

    // Encode: owned wrapper vs encode_into vs encode_into_parallel.
    let stripe = codec.encode_stripe(data).unwrap();
    assert_eq!(&stripe[..k], data, "{name}: systematic prefix");
    let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let mut parity = vec![vec![0xA5u8; len]; n - k];
    {
        let mut parity_refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        codec.encode_into(&data_refs, &mut parity_refs).unwrap();
    }
    assert_eq!(&stripe[k..], &parity[..], "{name}: encode_into parity");
    let mut par_parity = vec![vec![0x5Au8; len]; n - k];
    {
        let mut parity_refs: Vec<&mut [u8]> =
            par_parity.iter_mut().map(Vec::as_mut_slice).collect();
        encode_into_parallel(codec, &data_refs, &mut parity_refs, threads).unwrap();
    }
    assert_eq!(parity, par_parity, "{name}: parallel parity");

    if erased.is_empty() {
        return;
    }

    // Repair: owned reconstruct vs compiled session over borrowed
    // lanes whose stale contents must be fully overwritten.
    let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
    for &e in erased {
        shards[e] = None;
    }
    codec
        .reconstruct(&mut shards)
        .unwrap_or_else(|e| panic!("{name}: owned reconstruct of {erased:?}: {e}"));
    let session = codec
        .repair_session(erased)
        .unwrap_or_else(|e| panic!("{name}: session compile for {erased:?}: {e}"));
    let mut lanes = stripe.clone();
    for &e in erased {
        lanes[e].fill(0xEE);
    }
    let mut lane_refs: Vec<&mut [u8]> = lanes.iter_mut().map(Vec::as_mut_slice).collect();
    let mut view = StripeViewMut::new(&mut lane_refs, erased).unwrap();
    session.repair(&mut view).unwrap();
    drop(lane_refs);
    for (i, s) in shards.iter().enumerate() {
        assert_eq!(
            s.as_ref().unwrap(),
            &lanes[i],
            "{name}: lane {i} owned-vs-session for {erased:?}"
        );
        assert_eq!(
            &lanes[i], &stripe[i],
            "{name}: lane {i} round trip for {erased:?}"
        );
    }
}

/// The generic suite: assorted-length roundtrips, then every single and
/// every double erasure pattern at a fixed mid-size payload.
fn differential_suite<C: ErasureCodec + Sync>(codec: &C, name: &str) {
    let sb = codec.symbol_bytes();
    let n = codec.total_blocks();
    let k = codec.data_blocks();

    // Assorted lengths: one symbol, an odd handful, a fused-kernel
    // span, and a parallel-splitting span — each with a single loss.
    for (i, &base) in [1usize, 7, 129, 9001].iter().enumerate() {
        let len = base * sb;
        let data = seeded_data(k, len, 0xD1F + base as u64);
        assert_all_paths_agree(codec, name, &data, &[i % n], 3);
    }

    // Every single- and double-erasure pattern (all three families
    // have distance 5, so every such pattern must recover).
    let len = 32 * sb;
    let data = seeded_data(k, len, 0xD1F);
    for a in 0..n {
        assert_all_paths_agree(codec, name, &data, &[a], 2);
        for b in a + 1..n {
            assert_all_paths_agree(codec, name, &data, &[a, b], 2);
        }
    }
}

#[test]
fn reed_solomon_passes_the_differential_suite() {
    let rs: ReedSolomon = ReedSolomon::new(10, 4).unwrap();
    differential_suite(&rs, "rs(10,4)");
}

#[test]
fn lrc_passes_the_differential_suite() {
    let lrc = Lrc::xorbas_10_6_5().unwrap();
    differential_suite(&lrc, "lrc(10,6,5)");
}

#[test]
fn piggyback_passes_the_differential_suite() {
    let pb: PiggybackRs = PiggybackRs::new(10, 4).unwrap();
    differential_suite(&pb, "pb(10,4)");
}

/// Repair-read costs pinned exactly, per family, for every lane.
#[test]
fn repair_read_costs_are_exact_per_family() {
    // RS: every repair is a heavy k-lane read at full volume.
    let rs: ReedSolomon = ReedSolomon::new(10, 4).unwrap();
    for lost in 0..rs.total_blocks() {
        let plan = rs.repair_plan(&[lost]).unwrap();
        assert_eq!(plan.blocks_read(), 10, "rs lane {lost}");
        assert_eq!(plan.read_volume(), 10.0, "rs lane {lost}");
        assert!(!plan.tasks[0].light, "rs lane {lost}");
    }

    // LRC: every single loss decodes light from its 5-lane local group.
    let lrc = Lrc::xorbas_10_6_5().unwrap();
    for lost in 0..lrc.total_blocks() {
        let plan = lrc.repair_plan(&[lost]).unwrap();
        assert_eq!(plan.blocks_read(), 5, "lrc lane {lost}");
        assert_eq!(plan.read_volume(), 5.0, "lrc lane {lost}");
        assert!(plan.tasks[0].light, "lrc lane {lost}");
    }

    // Piggyback: a lost data lane touches k+1 = 11 lanes but moves
    // (k + group)/2 < k lane-volumes — out-of-group lanes contribute a
    // single substripe half. Parity losses fall back to RS cost.
    let pb: PiggybackRs = PiggybackRs::new(10, 4).unwrap();
    let k = 10;
    let mut total_volume = 0.0;
    for lost in 0..k {
        let plan = pb.repair_plan(&[lost]).unwrap();
        assert_eq!(plan.blocks_read(), k + 1, "pb data lane {lost}");
        let volume = plan.read_volume();
        assert!(
            volume < k as f64,
            "pb data lane {lost}: volume {volume} not below k"
        );
        // Group sizes at (10,4) are {4,3,3}: volume is (10+g)/2.
        let group = [4.0, 3.0, 3.0][lost % 3];
        assert_eq!(volume, (10.0 + group) / 2.0, "pb data lane {lost}");
        total_volume += volume;
    }
    // The headline: 6.7 mean vs RS's 10.0 — the ~33% byte saving.
    assert!((total_volume / k as f64 - 6.7).abs() < 1e-12);
    for lost in k..pb.total_blocks() {
        let plan = pb.repair_plan(&[lost]).unwrap();
        assert_eq!(plan.blocks_read(), 10, "pb parity lane {lost}");
        assert_eq!(plan.read_volume(), 10.0, "pb parity lane {lost}");
    }
}
