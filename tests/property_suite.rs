//! Workspace-wide property tests: invariants that must hold for *any*
//! valid inputs, not just the paper's parameters.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use std::sync::OnceLock;

use xorbas::codes::analysis::{combinations, minimum_distance};
use xorbas::codes::bounds::lrc_distance_bound;
use xorbas::codes::peeling::{peel, XorEquation};
use xorbas::codes::{
    encode_into_parallel, CodeError, ErasureCodec, Lrc, LrcSpec, PiggybackRs, ReedSolomon,
    StripeViewMut,
};
use xorbas::gf::{Field, Gf256, Gf65536};
use xorbas::linalg::{special, Matrix};

/// Payload lengths mixing byte-scale cases (serial fallback, odd tails)
/// with shard-scale ones, so `encode_into_parallel` really splits the
/// range (its serial fallback engages below ~4 KiB per thread).
fn arb_payload_len() -> impl Strategy<Value = usize> {
    (any::<bool>(), 1usize..96, 16_384usize..40_000)
        .prop_map(|(small, a, b)| if small { a } else { b })
}

/// Deterministic pseudo-random payloads from a seed.
fn seeded_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as u8
    };
    (0..k).map(|_| (0..len).map(|_| next()).collect()).collect()
}

/// Asserts the owned-Vec API and the zero-copy API produce bit-identical
/// stripes and repairs for one codec and erasure pattern.
fn assert_apis_agree<C: ErasureCodec + Sync>(
    codec: &C,
    data: &[Vec<u8>],
    erased: &[usize],
    threads: usize,
) -> Result<(), TestCaseError> {
    let k = codec.data_blocks();
    let n = codec.total_blocks();
    let len = data[0].len();
    // Encode: owned wrapper vs encode_into vs encode_into_parallel.
    let stripe = codec.encode_stripe(data).unwrap();
    prop_assert_eq!(&stripe[..k], data, "systematic prefix");
    let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let mut parity = vec![vec![0xA5u8; len]; n - k];
    {
        let mut parity_refs: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        codec.encode_into(&data_refs, &mut parity_refs).unwrap();
    }
    prop_assert_eq!(&stripe[k..], &parity[..], "encode_into parity");
    let mut par_parity = vec![vec![0x5Au8; len]; n - k];
    {
        let mut parity_refs: Vec<&mut [u8]> =
            par_parity.iter_mut().map(Vec::as_mut_slice).collect();
        encode_into_parallel(codec, &data_refs, &mut parity_refs, threads).unwrap();
    }
    prop_assert_eq!(&parity, &par_parity, "parallel parity");
    // Repair: owned reconstruct vs compiled session over borrowed lanes.
    let mut shards: Vec<Option<Vec<u8>>> = stripe.iter().cloned().map(Some).collect();
    for &e in erased {
        shards[e] = None;
    }
    let owned_ok = codec.reconstruct(&mut shards).is_ok();
    let session = codec.repair_session(erased);
    prop_assert_eq!(owned_ok, session.is_ok(), "recoverability agrees");
    let Ok(session) = session else { return Ok(()) };
    let mut lanes = stripe.clone();
    for &e in erased {
        lanes[e].fill(0xEE); // stale bytes must be fully overwritten
    }
    let mut lane_refs: Vec<&mut [u8]> = lanes.iter_mut().map(Vec::as_mut_slice).collect();
    let mut view = StripeViewMut::new(&mut lane_refs, erased).unwrap();
    session.repair(&mut view).unwrap();
    drop(lane_refs);
    for (i, s) in shards.iter().enumerate() {
        prop_assert_eq!(s.as_ref().unwrap(), &lanes[i], "lane {} repair", i);
        prop_assert_eq!(&lanes[i], &stripe[i], "lane {} round trip", i);
    }
    Ok(())
}

/// The wide (200, 60, 10)-class LRC over GF(2^16) — 260 lanes, past the
/// GF(2^8) ceiling. Built once: the generator construction, not the
/// per-case arithmetic, is the expensive part of wide-stripe testing.
fn wide_lrc() -> &'static Lrc<Gf65536> {
    static WIDE: OnceLock<Lrc<Gf65536>> = OnceLock::new();
    WIDE.get_or_init(|| Lrc::new(LrcSpec::WIDE).expect("wide LRC builds"))
}

/// The RS(200, 60) wide-stripe MDS contrast, built once.
fn wide_rs() -> &'static ReedSolomon<Gf65536> {
    static WIDE: OnceLock<ReedSolomon<Gf65536>> = OnceLock::new();
    WIDE.get_or_init(|| ReedSolomon::new(200, 60).expect("wide RS builds"))
}

/// The piggybacked RS(200, 60) — wide lanes *and* the 2-substripe
/// layout (4-byte symbols over GF(2^16)), built once.
fn wide_pb() -> &'static PiggybackRs<Gf65536> {
    static WIDE: OnceLock<PiggybackRs<Gf65536>> = OnceLock::new();
    WIDE.get_or_init(|| PiggybackRs::new(200, 60).expect("wide piggyback builds"))
}

/// Payload lengths divisible by 4 for the wide piggyback (2 substripes
/// of 2-byte GF(2^16) symbols), mixing byte-scale and shard-scale.
fn arb_quad_payload_len() -> impl Strategy<Value = usize> {
    (any::<bool>(), 1usize..24, 4_096usize..10_000)
        .prop_map(|(small, a, b)| if small { a * 4 } else { b * 4 })
}

/// Even payload lengths for 2-byte-symbol codecs: byte-scale cases plus
/// shard-scale ones that make `encode_into_parallel` really split.
fn arb_even_payload_len() -> impl Strategy<Value = usize> {
    (any::<bool>(), 1usize..48, 8_192usize..20_000)
        .prop_map(|(small, a, b)| if small { a * 2 } else { b * 2 })
}

/// Strategy: valid small LRC specs (k ≤ 12, r | k, g ≤ 4).
fn arb_lrc_spec() -> impl Strategy<Value = LrcSpec> {
    (2usize..=12, 1usize..=4, any::<bool>()).prop_flat_map(|(k, g, implied)| {
        let divisors: Vec<usize> = (1..=k).filter(|r| k % r == 0).collect();
        (0..divisors.len()).prop_map(move |i| LrcSpec {
            k,
            global_parities: g,
            group_size: divisors[i],
            implied_parity: implied,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every constructible LRC round-trips random data under every
    /// single-block erasure, always via the light decoder.
    #[test]
    fn any_lrc_single_erasure_light_decodes(
        spec in arb_lrc_spec(),
        seed in any::<u64>(),
    ) {
        let Ok(lrc) = Lrc::<Gf256>::new(spec) else { return Ok(()) };
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u8
        };
        let data: Vec<Vec<u8>> =
            (0..spec.k).map(|_| (0..24).map(|_| next()).collect()).collect();
        let stripe = lrc.encode_stripe(&data).unwrap();
        for lost in 0..lrc.total_blocks() {
            let mut shards: Vec<Option<Vec<u8>>> =
                stripe.iter().cloned().map(Some).collect();
            shards[lost] = None;
            let report = lrc.reconstruct(&mut shards).unwrap();
            prop_assert!(report.used_light_decoder, "block {lost} went heavy");
            prop_assert_eq!(shards[lost].as_ref().unwrap(), &stripe[lost]);
        }
    }

    /// The measured distance of every constructible LRC respects the
    /// Theorem-2 bound and exceeds the global-parity count.
    #[test]
    fn any_lrc_distance_within_bounds(spec in arb_lrc_spec()) {
        let Ok(lrc) = Lrc::<Gf256>::new(spec) else { return Ok(()) };
        let n = lrc.total_blocks();
        if n > 18 {
            return Ok(()); // keep the exhaustive search fast
        }
        let d = minimum_distance(lrc.generator());
        prop_assert!(d <= lrc_distance_bound(n, spec.k, spec.locality()));
        // At least the base code's erasure tolerance survives.
        prop_assert!(d > spec.global_parities);
    }

    /// RS: any erasure pattern up to m recovers; every pattern of
    /// m+1 data-heavy erasures still leaves a consistent report.
    #[test]
    fn rs_roundtrip_random_patterns(
        k in 2usize..=8,
        m in 1usize..=4,
        pattern_seed in any::<u64>(),
        len in 1usize..32,
    ) {
        let rs = ReedSolomon::<Gf256>::new(k, m).unwrap();
        let data: Vec<Vec<u8>> =
            (0..k).map(|i| vec![(i * 41 + 3) as u8; len]).collect();
        let stripe = rs.encode_stripe(&data).unwrap();
        // Deterministically pick an erasure pattern of size <= m.
        let mut rng = StdRng::seed_from_u64(pattern_seed);
        use rand::seq::SliceRandom;
        let mut idx: Vec<usize> = (0..k + m).collect();
        idx.shuffle(&mut rng);
        let erased = &idx[..m];
        let mut shards: Vec<Option<Vec<u8>>> =
            stripe.iter().cloned().map(Some).collect();
        for &e in erased {
            shards[e] = None;
        }
        let report = rs.reconstruct(&mut shards).unwrap();
        prop_assert_eq!(report.blocks_read, k);
        for (i, s) in shards.iter().enumerate() {
            prop_assert_eq!(s.as_ref().unwrap(), &stripe[i]);
        }
    }

    /// The owned-Vec API and the zero-copy API (encode_into /
    /// encode_into_parallel / RepairSession) are bit-identical for
    /// random RS geometries, payload lengths, and erasure patterns.
    #[test]
    fn rs_owned_and_zero_copy_apis_agree(
        k in 2usize..=8,
        m in 1usize..=4,
        // Mix byte-scale lengths (serial fallback, odd tails) with
        // shard-scale ones so encode_into_parallel really splits.
        len in arb_payload_len(),
        threads in 1usize..=4,
        seed in any::<u64>(),
        pattern_seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::<Gf256>::new(k, m).unwrap();
        let data = seeded_data(k, len, seed);
        let mut rng = StdRng::seed_from_u64(pattern_seed);
        use rand::seq::SliceRandom;
        let mut idx: Vec<usize> = (0..k + m).collect();
        idx.shuffle(&mut rng);
        let erased_count = (pattern_seed % (m as u64 + 1)) as usize;
        let mut erased = idx[..erased_count].to_vec();
        erased.sort_unstable();
        assert_apis_agree(&rs, &data, &erased, threads)?;
    }

    /// Same equivalence for random LRC geometries, including patterns
    /// that mix light and heavy repair.
    #[test]
    fn lrc_owned_and_zero_copy_apis_agree(
        spec in arb_lrc_spec(),
        len in arb_payload_len(),
        threads in 1usize..=4,
        seed in any::<u64>(),
        pattern_seed in any::<u64>(),
    ) {
        let Ok(lrc) = Lrc::<Gf256>::new(spec) else { return Ok(()) };
        let data = seeded_data(spec.k, len, seed);
        let n = lrc.total_blocks();
        let mut rng = StdRng::seed_from_u64(pattern_seed);
        use rand::seq::SliceRandom;
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        let erased_count = (pattern_seed % (spec.global_parities as u64 + 2)) as usize;
        let mut erased = idx[..erased_count.min(n)].to_vec();
        erased.sort_unstable();
        assert_apis_agree(&lrc, &data, &erased, threads)?;
    }

    /// Same equivalence for random piggybacked-RS geometries: owned,
    /// zero-copy, parallel encode, and session replay (both the fast
    /// single-data-loss path and the general path) are bit-identical.
    /// Payloads are even — two substripes of 1-byte GF(2^8) symbols.
    #[test]
    fn piggyback_owned_and_zero_copy_apis_agree(
        k in 2usize..=8,
        m in 2usize..=4,
        len in arb_even_payload_len(),
        threads in 1usize..=4,
        seed in any::<u64>(),
        pattern_seed in any::<u64>(),
    ) {
        let pb = PiggybackRs::<Gf256>::new(k, m).unwrap();
        let data = seeded_data(k, len, seed);
        let mut rng = StdRng::seed_from_u64(pattern_seed);
        use rand::seq::SliceRandom;
        let mut idx: Vec<usize> = (0..k + m).collect();
        idx.shuffle(&mut rng);
        let erased_count = (pattern_seed % (m as u64 + 1)) as usize;
        let mut erased = idx[..erased_count].to_vec();
        erased.sort_unstable();
        assert_apis_agree(&pb, &data, &erased, threads)?;
    }

    /// The piggyback substripe boundary is typed: any payload that is
    /// not a multiple of *twice* the field symbol is rejected with
    /// `PayloadNotSymbolAligned` — never silently truncated.
    #[test]
    fn piggyback_misaligned_payloads_are_typed_errors(
        k in 2usize..=8,
        m in 2usize..=4,
        half_len in 0usize..64,
    ) {
        let len = half_len * 2 + 1; // always odd, so never 2-aligned
        let pb = PiggybackRs::<Gf256>::new(k, m).unwrap();
        let data = seeded_data(k, len, 7);
        let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let mut parity = vec![vec![0u8; len]; m];
        let mut parity_refs: Vec<&mut [u8]> =
            parity.iter_mut().map(Vec::as_mut_slice).collect();
        let err = pb.encode_into(&data_refs, &mut parity_refs).unwrap_err();
        prop_assert!(
            matches!(
                err,
                CodeError::PayloadNotSymbolAligned { symbol_bytes: 2, len: l } if l == len
            ),
            "got {err:?}"
        );
    }
}

proptest! {
    // Wide-stripe cases run a 200-column heavy solve apiece, so this
    // block keeps its case count low; coverage comes from the targeted
    // pattern mix, not volume.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Wide-stripe equivalence at n = 260 > 255: the owned API, the
    /// zero-copy API, serial and parallel encode, and `RepairSession`
    /// replay agree bit-for-bit over GF(2^16) for failure patterns
    /// spanning the light decoder (cross-group), the heavy decoder
    /// (same-group pairs), and parity losses.
    #[test]
    fn wide_lrc_owned_and_zero_copy_apis_agree(
        len in arb_even_payload_len(),
        threads in 1usize..=4,
        seed in any::<u64>(),
        pattern_seed in any::<u64>(),
        clustered in any::<bool>(),
        extra in 0usize..=2,
    ) {
        let lrc = wide_lrc();
        let n = lrc.total_blocks();
        let data = seeded_data(200, len, seed);
        let mut rng = StdRng::seed_from_u64(pattern_seed);
        use rand::Rng;
        let mut erased: Vec<usize> = if clustered {
            // Two failures inside one data group: forces the heavy
            // decoder (a random pair across 260 lanes almost never
            // lands in one group).
            let g: usize = rng.gen_range(0..20);
            vec![
                g * 10 + rng.gen_range(0..5usize),
                g * 10 + 5 + rng.gen_range(0..5usize),
            ]
        } else {
            Vec::new()
        };
        for _ in 0..extra {
            erased.push(rng.gen_range(0..n));
        }
        erased.sort_unstable();
        erased.dedup();
        assert_apis_agree(lrc, &data, &erased, threads)?;
    }

    /// Wide RS at the same blocklength: any pattern within the erasure
    /// tolerance round-trips through the same four surfaces (every RS
    /// repair is a heavy 200-column solve).
    #[test]
    fn wide_rs_owned_and_zero_copy_apis_agree(
        len in arb_even_payload_len(),
        threads in 1usize..=4,
        seed in any::<u64>(),
        pattern_seed in any::<u64>(),
        erased_count in 0usize..=3,
    ) {
        let rs = wide_rs();
        let data = seeded_data(200, len, seed);
        let mut rng = StdRng::seed_from_u64(pattern_seed);
        use rand::Rng;
        let mut erased: Vec<usize> = (0..erased_count)
            .map(|_| rng.gen_range(0..rs.total_blocks()))
            .collect();
        erased.sort_unstable();
        erased.dedup();
        assert_apis_agree(rs, &data, &erased, threads)?;
    }

    /// Wide piggybacked RS (200, 60) over GF(2^16): the 2-substripe
    /// layout at 260 lanes round-trips through all four surfaces. Half
    /// the cases force the fast single-data-lane session path; the
    /// rest exercise the general multi-loss path.
    #[test]
    fn wide_piggyback_owned_and_zero_copy_apis_agree(
        len in arb_quad_payload_len(),
        threads in 1usize..=4,
        seed in any::<u64>(),
        pattern_seed in any::<u64>(),
        single_data in any::<bool>(),
    ) {
        let pb = wide_pb();
        let n = pb.total_blocks();
        let data = seeded_data(200, len, seed);
        let mut rng = StdRng::seed_from_u64(pattern_seed);
        use rand::Rng;
        let mut erased: Vec<usize> = if single_data {
            vec![rng.gen_range(0..200usize)]
        } else {
            (0..3).map(|_| rng.gen_range(0..n)).collect()
        };
        erased.sort_unstable();
        erased.dedup();
        assert_apis_agree(pb, &data, &erased, threads)?;

        // The wide substripe boundary is 4 bytes; a 2-aligned but
        // 4-misaligned payload must be a typed error.
        let bad_len = len + 2;
        let bad: Vec<Vec<u8>> = (0..200).map(|_| vec![0u8; bad_len]).collect();
        let bad_refs: Vec<&[u8]> = bad.iter().map(Vec::as_slice).collect();
        let mut parity = vec![vec![0u8; bad_len]; 60];
        let mut parity_refs: Vec<&mut [u8]> =
            parity.iter_mut().map(Vec::as_mut_slice).collect();
        let err = pb.encode_into(&bad_refs, &mut parity_refs).unwrap_err();
        prop_assert!(
            matches!(
                err,
                CodeError::PayloadNotSymbolAligned { symbol_bytes: 4, len: l } if l == bad_len
            ),
            "got {err:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Peeling soundness: whatever the decoder resolves satisfies the
    /// original equations exactly.
    #[test]
    fn peeling_solutions_satisfy_equations(
        values in proptest::collection::vec(0u32..256, 6..=10),
        missing_mask in proptest::collection::vec(any::<bool>(), 6..=10),
    ) {
        let n = values.len().min(missing_mask.len());
        let vals: Vec<Gf256> =
            values[..n].iter().map(|&v| Gf256::from_index(v)).collect();
        // Build chained equations y_i + y_{i+1} + y_{i+2} = rhs-free form:
        // use coefficient structure c1*y_a + c2*y_b + c3*y_c = 0 by
        // defining y_c accordingly; simpler: equations over consecutive
        // triples with the third element *defined* as the XOR of the
        // first two (unit coefficients).
        let mut y = vals.clone();
        let mut eqs = Vec::new();
        for i in (0..n.saturating_sub(2)).step_by(3) {
            y[i + 2] = y[i] + y[i + 1];
            eqs.push(XorEquation::new(vec![
                (i, Gf256::ONE),
                (i + 1, Gf256::ONE),
                (i + 2, Gf256::ONE),
            ]));
        }
        let available: Vec<bool> =
            missing_mask[..n].iter().map(|&m| !m).collect();
        let targets: Vec<usize> =
            (0..n).filter(|&i| !available[i]).collect();
        let outcome = peel(&eqs, &available, &targets);
        // Execute the steps on a copy where missing values are wiped.
        let mut working: Vec<Option<Gf256>> = y
            .iter()
            .zip(&available)
            .map(|(&v, &a)| a.then_some(v))
            .collect();
        for step in &outcome.steps {
            let mut acc = Gf256::ZERO;
            for &(src, c) in &step.sources {
                acc += c * working[src].expect("peel sources available");
            }
            working[step.repaired] = Some(acc);
        }
        for step in &outcome.steps {
            prop_assert_eq!(working[step.repaired].unwrap(), y[step.repaired]);
        }
    }

    /// Generator-matrix invariant: for any LRC, erasing fewer than d
    /// blocks never breaks rank (cross-check distance definition).
    #[test]
    fn distance_definition_consistency(spec in arb_lrc_spec()) {
        let Ok(lrc) = Lrc::<Gf256>::new(spec) else { return Ok(()) };
        let n = lrc.total_blocks();
        if n > 14 {
            return Ok(());
        }
        let d = minimum_distance(lrc.generator());
        if d >= 2 {
            for pattern in combinations(n, d - 1) {
                prop_assert!(
                    xorbas::codes::analysis::reconstructable(lrc.generator(), &pattern)
                );
            }
        }
    }

    /// Vandermonde systematization always preserves the row space:
    /// parity checks annihilate both forms.
    #[test]
    fn systematize_preserves_code(m in 1usize..=4, extra in 1usize..=6) {
        let k = extra + 1;
        let n = k + m;
        if n > 50 {
            return Ok(());
        }
        let h: Matrix<Gf256> = special::vandermonde(m, n);
        let g = h.right_null_space();
        let gs = special::systematize(&g).expect("MDS leading block");
        prop_assert!(gs.mul(&h.transpose()).is_zero());
        prop_assert_eq!(gs.rank(), k);
    }
}

/// Non-proptest cross-check: the (10,6,5) code's light-decoder reads
/// exactly match its equations for every single failure.
#[test]
fn equations_are_the_light_decoder() {
    let lrc = Lrc::xorbas_10_6_5().unwrap();
    for lost in 0..16 {
        let plan = lrc.repair_plan(&[lost]).unwrap();
        let eq = lrc
            .equations()
            .iter()
            .find(|eq| eq.indices().any(|i| i == lost))
            .expect("every block belongs to a repair group");
        let mut expected: Vec<usize> = eq.indices().filter(|&i| i != lost).collect();
        expected.sort_unstable();
        let mut got = plan.tasks[0].reads.clone();
        got.sort_unstable();
        assert_eq!(got, expected, "block {lost}");
    }
}
