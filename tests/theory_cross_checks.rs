//! Cross-crate consistency: the combinatorial analysis (xorbas-core),
//! the information-flow-graph achievability machinery (xorbas-flowgraph)
//! and the codecs must all tell the same story.

use xorbas::codes::analysis::{code_locality, combinations, minimum_distance, reconstructable};
use xorbas::codes::bounds::{lrc_distance_bound, mds_distance};
use xorbas::codes::{CodeSpec, ErasureCodec, Lrc, LrcSpec, ReedSolomon};
use xorbas::flowgraph::{all_collectors_feasible, lemma2_bound, GadgetParams};

/// The operational distance: smallest erasure count whose repair plan
/// can fail.
fn operational_distance<C: ErasureCodec>(codec: &C) -> usize {
    let n = codec.total_blocks();
    for e in 1..=n {
        if combinations(n, e).any(|pattern| codec.repair_plan(&pattern).is_err()) {
            return e;
        }
    }
    n + 1
}

#[test]
fn analytic_and_operational_distance_agree() {
    let rs: ReedSolomon = ReedSolomon::new(10, 4).unwrap();
    assert_eq!(minimum_distance(rs.generator()), operational_distance(&rs));

    let lrc = Lrc::xorbas_10_6_5().unwrap();
    assert_eq!(
        minimum_distance(lrc.generator()),
        operational_distance(&lrc)
    );

    let small: Lrc = Lrc::new(LrcSpec {
        k: 6,
        global_parities: 2,
        group_size: 3,
        implied_parity: true,
    })
    .unwrap();
    assert_eq!(
        minimum_distance(small.generator()),
        operational_distance(&small)
    );
}

#[test]
fn reconstructability_matches_repair_planning_exhaustively() {
    // For every erasure pattern of size <= 5 on the Xorbas code, rank
    // analysis and the repair planner must agree exactly.
    let lrc = Lrc::xorbas_10_6_5().unwrap();
    let g = lrc.generator();
    for size in 1..=5 {
        for pattern in combinations(16, size) {
            let rank_says = reconstructable(g, &pattern);
            let planner_says = lrc.repair_plan(&pattern).is_ok();
            assert_eq!(rank_says, planner_says, "pattern {pattern:?}");
        }
    }
}

#[test]
fn spec_locality_matches_measured_locality() {
    for spec in [
        LrcSpec::XORBAS,
        LrcSpec {
            k: 12,
            global_parities: 4,
            group_size: 4,
            implied_parity: true,
        },
        LrcSpec {
            k: 6,
            global_parities: 3,
            group_size: 3,
            implied_parity: false,
        },
    ] {
        let lrc: Lrc = Lrc::new(spec).unwrap();
        let measured = code_locality(lrc.generator(), spec.locality())
            .expect("locality within the spec's value");
        assert!(
            measured <= spec.locality(),
            "spec {spec:?}: measured {measured} > spec {}",
            spec.locality()
        );
    }
}

#[test]
fn theorem2_bound_consistent_between_crates() {
    for (n, k, r) in [(16, 10, 5), (14, 10, 10), (9, 6, 2), (12, 8, 3)] {
        assert_eq!(lrc_distance_bound(n, k, r), lemma2_bound(n, k, r));
    }
}

#[test]
fn flowgraph_feasibility_matches_constructed_code_distance() {
    // (k=4, g=2, r=2, implied): n = 4 + 2 + 2 = 8, (r+1) | n fails (3 ∤ 8),
    // so use (k=6, g=2, r=2, stored): n = 6 + 2 + 3 + 1 = 12, (r+1) | 12 ✓.
    let spec = LrcSpec {
        k: 6,
        global_parities: 2,
        group_size: 2,
        implied_parity: false,
    };
    let lrc: Lrc = Lrc::new(spec).unwrap();
    let n = lrc.total_blocks();
    let k = spec.k;
    let r = spec.locality();
    assert_eq!(n % (r + 1), 0, "gadget assumption");
    let d = minimum_distance(lrc.generator());
    // Achievability: the gadget must admit the distance our construction
    // actually reaches…
    assert!(
        all_collectors_feasible(GadgetParams { k, n, r, d }),
        "constructed d = {d} must be feasible"
    );
    // …and refuse anything beyond the Theorem-2 bound.
    let bound = lrc_distance_bound(n, k, r);
    if bound < n - k + 1 {
        assert!(!all_collectors_feasible(GadgetParams {
            k,
            n,
            r,
            d: bound + 1
        }));
    }
}

#[test]
fn mds_codes_meet_singleton_via_both_routes() {
    for (k, m) in [(4usize, 2usize), (6, 3), (10, 4)] {
        let rs: ReedSolomon = ReedSolomon::new(k, m).unwrap();
        assert_eq!(minimum_distance(rs.generator()), mds_distance(k + m, k));
        // r = k gadget (one group of k+1 does not generally divide n;
        // use the bound formula instead).
        assert_eq!(lrc_distance_bound(k + m, k, k), mds_distance(k + m, k));
    }
}

#[test]
fn codespec_constants_agree_with_codecs() {
    let lrc = Lrc::xorbas_10_6_5().unwrap();
    assert_eq!(lrc.total_blocks(), CodeSpec::LRC_10_6_5.total_blocks());
    assert_eq!(
        lrc.repair_plan(&[0]).unwrap().blocks_read(),
        CodeSpec::LRC_10_6_5.single_repair_reads()
    );
    let rs: ReedSolomon = ReedSolomon::new(10, 4).unwrap();
    assert_eq!(
        rs.repair_plan(&[0]).unwrap().blocks_read(),
        CodeSpec::RS_10_4.single_repair_reads()
    );
}
