//! End-to-end integration: simulated failures repaired by the real
//! codecs, with every restored block verified bit-exact against its
//! original payload (the engine asserts equality internally in
//! verify-payload mode; these tests drive whole scenarios through it).

use xorbas::codes::CodeSpec;
use xorbas::sim::experiment::placement_invariant_holds;
use xorbas::sim::{SimConfig, SimTime, Simulation};

fn verified_config(code: CodeSpec, nodes: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::ec2(code);
    cfg.cluster.nodes = nodes;
    cfg.cluster.block_bytes = 4 << 20;
    cfg.verify_payloads = true;
    cfg.payload_bytes = 128;
    cfg.seed = seed;
    cfg
}

#[test]
fn full_failure_sequence_repairs_bit_exactly_lrc() {
    let mut sim = Simulation::new(verified_config(CodeSpec::LRC_10_6_5, 24, 1));
    for i in 0..8 {
        sim.load_raided_file(&format!("f{i}"), 10);
    }
    let total_blocks = sim.hdfs.block_count();
    // Three failure events: single, pair, single.
    for (event, kills) in [1usize, 2, 1].into_iter().enumerate() {
        let victims = sim.pick_victims(kills);
        let at = sim.clock + SimTime::from_mins(5);
        for v in victims {
            sim.kill_node_at(at, v);
        }
        sim.run_until_idle(sim.clock + SimTime::from_mins(100_000));
        assert!(
            sim.hdfs.lost_blocks().is_empty(),
            "event {event}: all blocks restored"
        );
        assert!(
            placement_invariant_holds(&sim),
            "event {event}: placement ok"
        );
    }
    assert_eq!(sim.hdfs.block_count(), total_blocks);
    assert!(sim.metrics.snapshot().blocks_repaired > 0);
    assert_eq!(sim.metrics.data_loss_stripes, 0);
}

#[test]
fn full_failure_sequence_repairs_bit_exactly_rs() {
    let mut sim = Simulation::new(verified_config(CodeSpec::RS_10_4, 24, 2));
    for i in 0..8 {
        sim.load_raided_file(&format!("f{i}"), 10);
    }
    for kills in [1usize, 3] {
        let victims = sim.pick_victims(kills);
        let at = sim.clock + SimTime::from_mins(5);
        for v in victims {
            sim.kill_node_at(at, v);
        }
        sim.run_until_idle(sim.clock + SimTime::from_mins(100_000));
        assert!(sim.hdfs.lost_blocks().is_empty());
    }
}

#[test]
fn zero_padded_small_files_repair_bit_exactly() {
    // §5.3's regime: mostly 3-block files under a 10-block-stripe code.
    let mut cfg = verified_config(CodeSpec::LRC_10_6_5, 24, 3);
    cfg.pad_local_parities = false;
    let mut sim = Simulation::new(cfg);
    for i in 0..20 {
        sim.load_raided_file(&format!("small{i}"), if i % 5 == 0 { 10 } else { 3 });
    }
    let victims = sim.pick_victims(1);
    sim.kill_node_at(SimTime::from_secs(30), victims[0]);
    sim.run_until_idle(SimTime::from_mins(100_000));
    assert!(sim.hdfs.lost_blocks().is_empty());
    assert_eq!(sim.metrics.data_loss_stripes, 0);
}

#[test]
fn concurrent_workload_and_failure_both_complete() {
    let mut sim = Simulation::new(verified_config(CodeSpec::LRC_10_6_5, 24, 4));
    let f = sim.load_raided_file("work", 30);
    sim.submit_wordcount_at(SimTime::from_secs(1), f);
    let victim = sim.pick_victims(1)[0];
    sim.kill_node_at(SimTime::from_secs(20), victim);
    sim.run_until_idle(SimTime::from_mins(1_000_000));
    assert_eq!(sim.metrics.workload_jobs.len(), 1, "wordcount finished");
    assert!(sim.hdfs.lost_blocks().is_empty(), "repairs finished");
}

#[test]
fn repairs_also_verify_under_minimal_read_policy() {
    use xorbas::sim::ReadPolicy;
    let mut cfg = verified_config(CodeSpec::LRC_10_6_5, 24, 5);
    cfg.read_policy = ReadPolicy::Minimal;
    let mut sim = Simulation::new(cfg);
    for i in 0..6 {
        sim.load_raided_file(&format!("f{i}"), 10);
    }
    let victim = sim.pick_victims(1)[0];
    sim.kill_node_at(SimTime::from_secs(5), victim);
    sim.run_until_idle(SimTime::from_mins(100_000));
    assert!(sim.hdfs.lost_blocks().is_empty());
}

#[test]
fn replication_cluster_round_trips() {
    let mut cfg = verified_config(CodeSpec::REPLICATION_3, 12, 6);
    cfg.verify_payloads = false; // replication loader carries no payloads
    let mut sim = Simulation::new(cfg);
    sim.load_replicated_file("rep", 40, 3);
    let victim = sim.pick_victims(1)[0];
    sim.kill_node_at(SimTime::from_secs(5), victim);
    sim.run_until_idle(SimTime::from_mins(100_000));
    assert!(sim.hdfs.lost_blocks().is_empty());
}
