//! The §4 reliability model driven end-to-end by the real codecs.

use xorbas::codes::{Lrc, LrcSpec, ReedSolomon};
use xorbas::reliability::{
    analyze_codec, analyze_replication, table1, ClusterParams, PAPER_TABLE1_MTTDL_DAYS,
};

#[test]
fn table1_replication_row_matches_paper_within_5_percent() {
    let rows = table1(&ClusterParams::facebook()).unwrap();
    let ratio = rows[0].mttdl_days / PAPER_TABLE1_MTTDL_DAYS[0];
    assert!(
        (0.95..1.05).contains(&ratio),
        "replication MTTDL {:.4e} vs paper {:.4e}",
        rows[0].mttdl_days,
        PAPER_TABLE1_MTTDL_DAYS[0]
    );
}

#[test]
fn table1_ordering_and_coded_gap_match_paper_shape() {
    let rows = table1(&ClusterParams::facebook()).unwrap();
    assert!(rows[0].mttdl_days < rows[1].mttdl_days);
    assert!(rows[1].mttdl_days < rows[2].mttdl_days);
    // Coded schemes are >= 3 zeros above replication (paper: >= 3).
    assert!(rows[1].zeros_over(&rows[0]) >= 3.0);
    // The LRC's faster repairs more than compensate its extra stripe
    // width (paper: ~1.5 zeros; our clean chain yields a smaller but
    // strictly positive gap — see EXPERIMENTS.md E3).
    assert!(rows[2].zeros_over(&rows[1]) > 0.25);
}

#[test]
fn lrc_light_decoder_probabilities_decay_with_failures() {
    let lrc = Lrc::xorbas_10_6_5().unwrap();
    let a = analyze_codec(&lrc, &ClusterParams::facebook());
    let p = &a.light_probability_per_state;
    assert_eq!(p.len(), 4);
    assert_eq!(p[0], 1.0, "single failures always light-decode");
    for w in p.windows(2) {
        assert!(w[1] <= w[0] + 1e-12, "light probability must not increase");
    }
    assert!(p[3] > 0.0, "even at 4 failures some repairs stay local");
}

#[test]
fn wider_stripes_lower_mttdl_at_fixed_redundancy_style() {
    // RS(10,4) vs RS(12,4): more blocks at risk per stripe, same
    // tolerance, and longer repair reads => lower MTTDL.
    let p = ClusterParams::facebook();
    let narrow: ReedSolomon = ReedSolomon::new(10, 4).unwrap();
    let wide: ReedSolomon = ReedSolomon::new(12, 4).unwrap();
    let narrow = analyze_codec(&narrow, &p);
    let wide = analyze_codec(&wide, &p);
    assert!(wide.mttdl_days < narrow.mttdl_days);
}

#[test]
fn stored_parity_lrc_slightly_beats_implied_on_reliability() {
    // The 17th block adds repair options for the parity group and one
    // more failure must accumulate before distance is threatened; the
    // implied-parity variant trades that margin for 1 block of storage.
    let p = ClusterParams::facebook();
    let implied = analyze_codec(&Lrc::xorbas_10_6_5().unwrap(), &p);
    let stored: Lrc = Lrc::new(LrcSpec {
        implied_parity: false,
        ..LrcSpec::XORBAS
    })
    .unwrap();
    let stored = analyze_codec(&stored, &p);
    assert_eq!(implied.distance, 5);
    assert_eq!(stored.distance, 5);
    // Both live in the same reliability class; neither collapses.
    let zeros = stored.zeros_over(&implied).abs();
    assert!(
        zeros < 1.0,
        "variants within one order of magnitude: {zeros}"
    );
}

#[test]
fn more_replicas_help_replication_dramatically() {
    let p = ClusterParams::facebook();
    let two = analyze_replication(2, &p);
    let three = analyze_replication(3, &p);
    assert!(three.mttdl_days / two.mttdl_days > 1e3);
}
