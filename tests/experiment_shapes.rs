//! Scaled-down versions of the §5 experiments asserting the *shapes*
//! the paper reports (the full-size runs live in `crates/bench`).

use xorbas::codes::CodeSpec;
use xorbas::sim::experiment::{ec2_experiment, workload_experiment};

#[test]
fn ec2_shape_xorbas_reads_roughly_half_per_lost_block() {
    let rs = ec2_experiment(CodeSpec::RS_10_4, 20, 77);
    let lrc = ec2_experiment(CodeSpec::LRC_10_6_5, 20, 77);
    let per_block = |r: &xorbas::sim::experiment::Ec2ExperimentResult| {
        let gb: f64 = r.events.iter().map(|e| e.hdfs_gb_read).sum();
        let lost: usize = r.events.iter().map(|e| e.blocks_lost).sum();
        gb / lost as f64
    };
    let ratio = per_block(&lrc) / per_block(&rs);
    // Paper §5.2.1: 41%-52%; deployed-read policy and multi-failures
    // push the simulated ratio around the same band.
    assert!(
        (0.30..0.70).contains(&ratio),
        "per-lost-block read ratio {ratio}"
    );
}

#[test]
fn ec2_shape_xorbas_finishes_repairs_faster() {
    let rs = ec2_experiment(CodeSpec::RS_10_4, 20, 78);
    let lrc = ec2_experiment(CodeSpec::LRC_10_6_5, 20, 78);
    let rs_total: f64 = rs.events.iter().map(|e| e.repair_minutes).sum();
    let lrc_total: f64 = lrc.events.iter().map(|e| e.repair_minutes).sum();
    assert!(
        lrc_total < rs_total,
        "Xorbas {lrc_total:.1} min vs RS {rs_total:.1} min"
    );
}

#[test]
fn ec2_shape_network_tracks_reads() {
    // §5.2.2: network traffic ≈ proportional to bytes read (read streams
    // plus write-back of restored blocks).
    let run = ec2_experiment(CodeSpec::LRC_10_6_5, 20, 79);
    for e in &run.events {
        assert!(e.network_gb > 0.8 * e.hdfs_gb_read);
        assert!(e.network_gb < 2.0 * e.hdfs_gb_read + 0.5);
    }
}

#[test]
fn workload_shape_rs_suffers_more_from_missing_blocks() {
    let baseline = workload_experiment(CodeSpec::LRC_10_6_5, 0.0, 80);
    let lrc = workload_experiment(CodeSpec::LRC_10_6_5, 0.2, 80);
    let rs = workload_experiment(CodeSpec::RS_10_4, 0.2, 80);
    let lrc_delay = lrc.avg_job_minutes - baseline.avg_job_minutes;
    let rs_delay = rs.avg_job_minutes - baseline.avg_job_minutes;
    assert!(lrc_delay > 0.0, "missing blocks must cost something");
    assert!(
        rs_delay > 1.5 * lrc_delay,
        "paper: RS delay ({rs_delay:.1}) more than doubles Xorbas's ({lrc_delay:.1})"
    );
    // Table-2 shape: degraded reads inflate total bytes read, RS worst.
    assert!(baseline.total_gb_read < lrc.total_gb_read);
    assert!(lrc.total_gb_read < rs.total_gb_read);
}

#[test]
fn experiments_are_reproducible() {
    let a = ec2_experiment(CodeSpec::LRC_10_6_5, 10, 81);
    let b = ec2_experiment(CodeSpec::LRC_10_6_5, 10, 81);
    assert_eq!(a.events, b.events);
}
